//! The DCF contention simulator.
//!
//! ## Model
//!
//! Time is continuous (integer nanoseconds) but contention is
//! slot-synchronised, as in Bianchi's model and NS2: after every busy
//! period the idle slot grid is anchored at `channel_free_at + DIFS`,
//! and a station's backoff counter positions its (potential)
//! transmission at `anchor + slots_left · slot`. Two stations whose
//! counters expire on the same grid point collide. A station that
//! starts contending in the middle of an idle period first observes
//! DIFS of idle medium and then joins the *same* grid (its start point
//! is rounded up to the next grid slot), which keeps the slot-level
//! vulnerability window of real DCF.
//!
//! ## Per-packet lifecycle
//!
//! ```text
//! arrival ──(queueing)──> head-of-queue ──(DIFS+backoff+retries)──> data on air
//!    │                        │ head_since                             │
//!    └─> PacketRecord.arrival └─> access delay μ starts            rx_end = data end
//!                                                       done = ACK end (μ ends)
//! ```

use crate::options::MacOptions;
use csmaprobe_desim::rng::{derive_seed, SimRng};
use csmaprobe_desim::time::{Dur, Time};
use csmaprobe_phy::Phy;
use csmaprobe_traffic::{PacketArrival, Source};
use std::collections::VecDeque;

/// Thread-local recycling of per-replication simulation allocations.
///
/// Monte-Carlo replication builds and tears down a [`WlanSim`] per
/// replication; within one worker thread the transmission-queue deques
/// and packet-record vectors are identical in shape run after run, so
/// they are parked here instead of returned to the allocator. A run
/// reclaims its queues automatically; record buffers flow back when the
/// consumer calls [`SimOutput::recycle`] after extracting what it
/// needs. Purely an allocation cache — contents are always cleared, so
/// simulation results are unaffected.
mod pool {
    use super::PacketRecord;
    use csmaprobe_desim::time::Time;
    use std::cell::RefCell;
    use std::collections::VecDeque;

    /// Spare buffers kept per thread (beyond this, buffers drop).
    const MAX_SPARES: usize = 64;

    #[derive(Default)]
    struct Pool {
        queues: Vec<VecDeque<(Time, u32, u16)>>,
        records: Vec<Vec<PacketRecord>>,
        reuses: u64,
    }

    thread_local! {
        static POOL: RefCell<Pool> = RefCell::new(Pool::default());
    }

    pub(super) fn take_queue() -> VecDeque<(Time, u32, u16)> {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            match p.queues.pop() {
                Some(q) => {
                    p.reuses += 1;
                    q
                }
                None => VecDeque::new(),
            }
        })
    }

    pub(super) fn give_queue(mut q: VecDeque<(Time, u32, u16)>) {
        q.clear();
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.queues.len() < MAX_SPARES {
                p.queues.push(q);
            }
        });
    }

    pub(super) fn take_records() -> Vec<PacketRecord> {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            match p.records.pop() {
                Some(v) => {
                    p.reuses += 1;
                    v
                }
                None => Vec::new(),
            }
        })
    }

    pub(super) fn give_records(mut v: Vec<PacketRecord>) {
        v.clear();
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.records.len() < MAX_SPARES {
                p.records.push(v);
            }
        });
    }

    /// How many buffers this thread has reused so far (for tests and
    /// diagnostics).
    pub fn reuse_count() -> u64 {
        POOL.with(|p| p.borrow().reuses)
    }
}

/// Number of recycled simulation buffers this thread has reused (see
/// the module-internal pool; exposed for tests and diagnostics).
pub fn sim_pool_reuses() -> u64 {
    pool::reuse_count()
}

/// Identifier of a station inside one [`WlanSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StationId(pub usize);

/// Full schedule of one transmitted (or dropped) packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Arrival at the transmission queue.
    pub arrival: Time,
    /// Instant the packet reached the head of the queue and medium
    /// access began (the start of the paper's access delay μ).
    pub head: Time,
    /// End of the successful data frame on the air — the receiver-side
    /// timestamp used for dispersion measurements. For dropped packets
    /// this is the end of the last failed attempt.
    pub rx_end: Time,
    /// Completion: ACK fully received (successful) or drop declared.
    pub done: Time,
    /// Payload bytes.
    pub bytes: u32,
    /// Number of retransmission attempts (0 = first attempt succeeded).
    pub retries: u32,
    /// True when the retry limit was exceeded and the frame was lost.
    pub dropped: bool,
    /// Flow tag copied from the arrival (distinguishes probe packets
    /// from FIFO cross-traffic sharing the same queue).
    pub flow: u16,
}

impl PacketRecord {
    /// The paper's access delay μ: head-of-queue to complete
    /// transmission.
    #[inline]
    pub fn access_delay(&self) -> Dur {
        self.done - self.head
    }

    /// Time spent queued behind other packets of the same station.
    #[inline]
    pub fn queueing_delay(&self) -> Dur {
        self.head - self.arrival
    }

    /// Total sojourn (arrival to completion) — `Z_i` of eq. (15).
    #[inline]
    pub fn sojourn(&self) -> Dur {
        self.done - self.arrival
    }
}

/// Per-station contention state.
struct Station {
    source: Box<dyn Source>,
    rng: SimRng,
    next_arrival: Option<PacketArrival>,
    /// FIFO transmission queue: `(arrival, bytes, flow)`; the head is
    /// the packet currently contending.
    queue: VecDeque<(Time, u32, u16)>,
    /// When the current head reached the head of the queue.
    head_since: Time,
    /// Remaining backoff slots for the head packet.
    slots_left: u32,
    /// Grid-aligned instant this station's countdown (re)starts.
    count_start: Time,
    /// Whether the head packet currently has contention state armed.
    contending: bool,
    /// Backoff stage (contention window doublings so far).
    stage: u32,
    /// Retry count of the head packet.
    retries: u32,
    /// Completed packet records, in completion order.
    records: Vec<PacketRecord>,
}

impl Station {
    fn tx_time(&self, slot: Dur) -> Time {
        debug_assert!(self.contending);
        self.count_start + slot * self.slots_left as u64
    }
}

/// One collision-domain WLAN simulation.
///
/// Build with [`WlanSim::new`], attach stations ([`WlanSim::add_station`]),
/// then [`WlanSim::run`]. Each station's RNG stream is derived from the
/// master seed and the station index, so results are a pure function of
/// `(phy, sources, seed)`.
/// Early-termination rule: stop once a station has completed a number
/// of packets of one flow.
#[derive(Debug, Clone, Copy)]
struct StopRule {
    station: usize,
    flow: u16,
    remaining: usize,
}

pub struct WlanSim {
    phy: Phy,
    seed: u64,
    options: MacOptions,
    stations: Vec<Station>,
    collisions: u64,
    stop_rule: Option<StopRule>,
}

/// Aggregate channel airtime accounting over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Airtime consumed by successful exchanges (data + SIFS + ACK,
    /// plus the RTS/CTS preface when used).
    pub success_time: Dur,
    /// Airtime wasted on collisions (longest frame + ACK timeout).
    pub collision_time: Dur,
    /// Airtime wasted on corrupted frames (frame-error injection).
    pub error_time: Dur,
    /// Number of collision events.
    pub collisions: u64,
    /// Number of corrupted-frame events.
    pub frame_errors: u64,
}

impl ChannelStats {
    /// Total busy airtime.
    pub fn busy_time(&self) -> Dur {
        self.success_time + self.collision_time + self.error_time
    }

    /// Fraction of `[0, until]` the channel was busy.
    pub fn utilisation(&self, until: Time) -> f64 {
        if until == Time::ZERO {
            return 0.0;
        }
        self.busy_time().as_secs_f64() / until.as_secs_f64()
    }
}

/// Everything a finished simulation produced.
pub struct SimOutput {
    phy: Phy,
    /// Per-station completed packet records (completion order).
    station_records: Vec<Vec<PacketRecord>>,
    /// Arrival times of packets still queued when the run ended.
    unfinished: Vec<Vec<Time>>,
    /// Number of collision events on the channel.
    pub collisions: u64,
    /// Channel airtime accounting.
    pub channel: ChannelStats,
    /// The run horizon actually used.
    pub horizon: Time,
    /// Time of the last completed packet across all stations.
    pub last_done: Time,
}

impl WlanSim {
    /// A simulation over `phy` timing with the given master seed.
    pub fn new(phy: Phy, seed: u64) -> Self {
        WlanSim {
            phy,
            seed,
            options: MacOptions::default(),
            stations: Vec::new(),
            collisions: 0,
            stop_rule: None,
        }
    }

    /// Stop the run as soon as `station` has completed (delivered or
    /// dropped) `count` packets of `flow` — everything before the stop
    /// instant is identical to an un-stopped run, so probing
    /// experiments skip the dead cross-traffic-only tail of their
    /// worst-case horizon.
    pub fn stop_after_flow(&mut self, station: StationId, flow: u16, count: usize) {
        self.stop_rule = Some(StopRule {
            station: station.0,
            flow,
            remaining: count,
        });
    }

    /// Override the MAC behaviour options (defaults to the paper's
    /// configuration).
    pub fn set_options(&mut self, options: MacOptions) {
        self.options = options;
    }

    /// Builder-style variant of [`WlanSim::set_options`].
    pub fn with_options(mut self, options: MacOptions) -> Self {
        self.set_options(options);
        self
    }

    /// Attach a station fed by `source`. Returns its id; ids are dense
    /// indices in attach order.
    pub fn add_station(&mut self, source: Box<dyn Source>) -> StationId {
        let idx = self.stations.len();
        let rng = SimRng::new(derive_seed(self.seed, idx as u64 + 1));
        self.stations.push(Station {
            source,
            rng,
            next_arrival: None,
            queue: pool::take_queue(),
            head_since: Time::ZERO,
            slots_left: 0,
            count_start: Time::ZERO,
            contending: false,
            stage: 0,
            retries: 0,
            records: pool::take_records(),
        });
        StationId(idx)
    }

    /// Align `t` up to the idle-period slot grid anchored at `anchor`.
    fn align_up(anchor: Time, slot: Dur, t: Time) -> Time {
        if t <= anchor {
            return anchor;
        }
        let offset = t - anchor;
        anchor + slot * offset.div_ceil_dur(slot)
    }

    /// Run until `horizon` (exclusive) or until no event remains.
    pub fn run(mut self, horizon: Time) -> SimOutput {
        let slot = self.phy.slot;
        let difs = self.phy.difs();
        let mut channel_free_at = Time::ZERO;
        let mut last_done = Time::ZERO;
        let mut channel = ChannelStats::default();
        let mut stop = self.stop_rule;

        // Prime every station's arrival look-ahead.
        for st in &mut self.stations {
            st.next_arrival = st.source.next_packet(&mut st.rng);
        }

        loop {
            // Early termination: the watched flow has fully completed;
            // everything recorded so far is identical to an un-stopped
            // run, and the rest of the horizon is dead weight.
            if stop.is_some_and(|s| s.remaining == 0) {
                break;
            }

            // Earliest pending arrival across stations.
            let mut next_arr = Time::MAX;
            let mut arr_station = usize::MAX;
            for (i, st) in self.stations.iter().enumerate() {
                if let Some(p) = st.next_arrival {
                    if p.time < next_arr {
                        next_arr = p.time;
                        arr_station = i;
                    }
                }
            }

            // Earliest candidate transmission across contending stations.
            let mut next_tx = Time::MAX;
            for st in &self.stations {
                if st.contending {
                    let t = st.tx_time(slot);
                    if t < next_tx {
                        next_tx = t;
                    }
                }
            }

            let next_event = next_arr.min(next_tx);
            if next_event == Time::MAX || next_event >= horizon {
                break;
            }

            if next_arr <= next_tx {
                // ---- arrival ----
                let st = &mut self.stations[arr_station];
                let pkt = st.next_arrival.take().unwrap();
                st.next_arrival = st.source.next_packet(&mut st.rng);
                debug_assert!(
                    st.next_arrival.map(|n| n.time >= pkt.time).unwrap_or(true),
                    "source emitted decreasing arrival times"
                );
                st.queue.push_back((pkt.time, pkt.bytes, pkt.flow));
                if st.queue.len() == 1 {
                    // New head: arm contention.
                    st.head_since = pkt.time;
                    st.stage = 0;
                    st.retries = 0;
                    st.contending = true;
                    if pkt.time < channel_free_at {
                        // Medium busy: classic backoff, counted from the
                        // next idle period.
                        st.slots_left =
                            st.rng.range_inclusive(0, self.phy.cw_at_stage(0) as u64) as u32;
                        st.count_start = channel_free_at + difs;
                    } else {
                        // Medium idle: immediate access after DIFS,
                        // quantised onto the current idle grid (unless
                        // the ablation switch forces a backoff draw).
                        let anchor = channel_free_at + difs;
                        st.slots_left = if self.options.immediate_access {
                            0
                        } else {
                            st.rng.range_inclusive(0, self.phy.cw_at_stage(0) as u64) as u32
                        };
                        st.count_start = Self::align_up(anchor, slot, pkt.time + difs);
                    }
                }
                continue;
            }

            // ---- transmission(s) at next_tx ----
            let t = next_tx;
            let winners: Vec<usize> = self
                .stations
                .iter()
                .enumerate()
                .filter(|(_, st)| st.contending && st.tx_time(slot) == t)
                .map(|(i, _)| i)
                .collect();
            debug_assert!(!winners.is_empty());

            // Freeze every other contending station.
            for (i, st) in self.stations.iter_mut().enumerate() {
                if !st.contending || winners.contains(&i) {
                    continue;
                }
                if st.count_start <= t {
                    let elapsed = (t - st.count_start).div_dur(slot) as u32;
                    debug_assert!(
                        st.slots_left > elapsed,
                        "non-winner should not have expired"
                    );
                    st.slots_left -= elapsed;
                } else if st.slots_left == 0 {
                    // Lost its immediate-access opportunity to this busy
                    // period: must back off like everyone else.
                    st.slots_left = st
                        .rng
                        .range_inclusive(0, self.phy.cw_at_stage(st.stage) as u64)
                        as u32;
                }
            }

            let busy_end;
            if winners.len() == 1 {
                let w = winners[0];
                let failed = self.options.frame_error_rate > 0.0
                    && self.stations[w].rng.f64() < self.options.frame_error_rate;
                let st = &mut self.stations[w];
                let (arrival, bytes, flow) = *st.queue.front().expect("winner with empty queue");
                let uses_rts = self.options.uses_rts(bytes);
                let preface = if uses_rts {
                    self.phy.rts_cts_preface()
                } else {
                    Dur::ZERO
                };
                let data = self.phy.data_airtime(bytes);
                if failed {
                    // ---- corrupted data frame: no ACK, BEB retry ----
                    channel.frame_errors += 1;
                    let fail_end = t + preface + data + self.phy.ack_timeout();
                    channel.error_time += fail_end - t;
                    let retry_limit = self.phy.retry_limit;
                    st.retries += 1;
                    st.stage += 1;
                    if st.retries > retry_limit {
                        st.records.push(PacketRecord {
                            arrival,
                            head: st.head_since,
                            rx_end: t + preface + data,
                            done: fail_end,
                            bytes,
                            retries: st.retries,
                            dropped: true,
                            flow,
                        });
                        if let Some(s) = stop.as_mut() {
                            if s.station == w && s.flow == flow {
                                s.remaining = s.remaining.saturating_sub(1);
                            }
                        }
                        last_done = last_done.max(fail_end);
                        st.queue.pop_front();
                        Self::rearm_after_completion(st, &self.phy, fail_end);
                    } else {
                        let cw = self.phy.cw_at_stage(st.stage);
                        st.slots_left = st.rng.range_inclusive(0, cw as u64) as u32;
                    }
                    busy_end = fail_end;
                } else {
                    // ---- success ----
                    let rx_end = t + preface + data;
                    let done = rx_end + self.phy.sifs + self.phy.ack_airtime();
                    channel.success_time += done - t;
                    st.records.push(PacketRecord {
                        arrival,
                        head: st.head_since,
                        rx_end,
                        done,
                        bytes,
                        retries: st.retries,
                        dropped: false,
                        flow,
                    });
                    if let Some(s) = stop.as_mut() {
                        if s.station == w && s.flow == flow {
                            s.remaining = s.remaining.saturating_sub(1);
                        }
                    }
                    last_done = last_done.max(done);
                    st.queue.pop_front();
                    Self::rearm_after_completion(st, &self.phy, done);
                    busy_end = done;
                }
            } else {
                // ---- collision ----
                self.collisions += 1;
                channel.collisions += 1;
                let max_frame = winners
                    .iter()
                    .map(|&i| {
                        let (_, bytes, _) = *self.stations[i].queue.front().unwrap();
                        if self.options.uses_rts(bytes) {
                            // RTS/CTS: only the short RTS collides.
                            self.phy.rts_airtime()
                        } else {
                            self.phy.data_airtime(bytes)
                        }
                    })
                    .max()
                    .unwrap();
                // The channel is unusable for the longest frame plus the
                // ACK/CTS-timeout the colliders observe before resuming.
                busy_end = t + max_frame + self.phy.sifs + self.phy.ack_airtime();
                channel.collision_time += busy_end - t;
                for &i in &winners {
                    let retry_limit = self.phy.retry_limit;
                    let st = &mut self.stations[i];
                    st.retries += 1;
                    st.stage += 1;
                    if st.retries > retry_limit {
                        // Drop the frame.
                        let (arrival, bytes, flow) = *st.queue.front().unwrap();
                        st.records.push(PacketRecord {
                            arrival,
                            head: st.head_since,
                            rx_end: t + self.phy.data_airtime(bytes),
                            done: busy_end,
                            bytes,
                            retries: st.retries,
                            dropped: true,
                            flow,
                        });
                        if let Some(s) = stop.as_mut() {
                            if s.station == i && s.flow == flow {
                                s.remaining = s.remaining.saturating_sub(1);
                            }
                        }
                        last_done = last_done.max(busy_end);
                        st.queue.pop_front();
                        Self::rearm_after_completion(st, &self.phy, busy_end);
                    } else {
                        let cw = self.phy.cw_at_stage(st.stage);
                        st.slots_left = st.rng.range_inclusive(0, cw as u64) as u32;
                    }
                }
            }

            channel_free_at = busy_end;
            // Re-anchor every contending station on the new idle grid.
            let anchor = channel_free_at + difs;
            for st in &mut self.stations {
                if st.contending {
                    st.count_start = anchor;
                }
            }
        }

        // Teardown doubles as the reuse path: queue deques go straight
        // back to the thread-local pool, record buffers follow when the
        // consumer calls [`SimOutput::recycle`].
        let mut station_records = Vec::with_capacity(self.stations.len());
        let mut unfinished = Vec::with_capacity(self.stations.len());
        for st in &mut self.stations {
            station_records.push(std::mem::take(&mut st.records));
            unfinished.push(st.queue.iter().map(|&(a, _, _)| a).collect());
            pool::give_queue(std::mem::take(&mut st.queue));
        }

        SimOutput {
            phy: self.phy,
            station_records,
            unfinished,
            collisions: self.collisions,
            channel,
            horizon,
            last_done,
        }
    }

    /// After the head packet completes (success or drop): reset the
    /// contention window and arm the next head, if any, with a fresh
    /// post-transmission backoff.
    fn rearm_after_completion(st: &mut Station, phy: &Phy, done: Time) {
        st.stage = 0;
        st.retries = 0;
        if st.queue.is_empty() {
            st.contending = false;
        } else {
            st.head_since = done;
            st.slots_left = st.rng.range_inclusive(0, phy.cw_at_stage(0) as u64) as u32;
            st.contending = true;
            // count_start is set by the caller's re-anchoring pass.
        }
    }
}

impl SimOutput {
    /// Completed packet records of a station, in completion order.
    pub fn records(&self, id: StationId) -> &[PacketRecord] {
        &self.station_records[id.0]
    }

    /// Records of one flow within a station (probe vs FIFO
    /// cross-traffic sharing the queue), in completion order.
    pub fn flow_records(&self, id: StationId, flow: u16) -> Vec<PacketRecord> {
        self.station_records[id.0]
            .iter()
            .filter(|r| r.flow == flow)
            .copied()
            .collect()
    }

    /// Number of stations simulated.
    pub fn station_count(&self) -> usize {
        self.station_records.len()
    }

    /// Access-delay sequence μ_1..μ_n of a station's completed packets,
    /// in seconds.
    pub fn access_delays_s(&self, id: StationId) -> Vec<f64> {
        self.station_records[id.0]
            .iter()
            .map(|r| r.access_delay().as_secs_f64())
            .collect()
    }

    /// Delivered throughput of a station over `[0, until]`, counting
    /// frames whose data transmission completed by `until`.
    pub fn throughput_bps(&self, id: StationId, until: Time) -> f64 {
        let bits: u64 = self.station_records[id.0]
            .iter()
            .filter(|r| !r.dropped && r.rx_end <= until)
            .map(|r| r.bytes as u64 * 8)
            .sum();
        if until == Time::ZERO {
            return 0.0;
        }
        bits as f64 / until.as_secs_f64()
    }

    /// Throughput over an explicit window `[from, to]`.
    pub fn throughput_bps_window(&self, id: StationId, from: Time, to: Time) -> f64 {
        debug_assert!(to > from);
        let bits: u64 = self.station_records[id.0]
            .iter()
            .filter(|r| !r.dropped && r.rx_end > from && r.rx_end <= to)
            .map(|r| r.bytes as u64 * 8)
            .sum();
        bits as f64 / (to - from).as_secs_f64()
    }

    /// Queue length (packets in the station's transmission queue,
    /// including the head in contention/service) at time `t`.
    ///
    /// Reconstructed from arrivals and completions; `O(log n)`.
    pub fn queue_len_at(&self, id: StationId, t: Time) -> usize {
        let recs = &self.station_records[id.0];
        // Arrivals of completed packets are sorted (per-station FIFO);
        // records are in completion order so `done` is sorted too.
        let completed_arrived = recs.partition_point(|r| r.arrival <= t);
        let departed = recs.partition_point(|r| r.done <= t);
        let unfinished_arrived = self.unfinished[id.0].partition_point(|&a| a <= t);
        completed_arrived + unfinished_arrived - departed
    }

    /// The PHY the simulation used.
    pub fn phy(&self) -> &Phy {
        &self.phy
    }

    /// Return this output's record buffers to the thread-local
    /// simulation pool so the next [`WlanSim`] on this worker reuses
    /// their allocations. Call after extracting everything needed; the
    /// buffers are cleared, never the data copied.
    pub fn recycle(mut self) {
        for v in self.station_records.drain(..) {
            pool::give_records(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measured_standalone_capacity_bps, saturated_source, standalone_cycle};
    use csmaprobe_traffic::{PoissonSource, SizeModel, TraceSource};

    fn phy() -> Phy {
        Phy::dsss_11mbps()
    }

    fn trace(times_us: &[u64], bytes: u32) -> Box<TraceSource> {
        Box::new(TraceSource::new(
            times_us
                .iter()
                .map(|&t| PacketArrival::new(Time::from_micros(t), bytes))
                .collect(),
        ))
    }

    #[test]
    fn lone_packet_gets_immediate_access() {
        let mut sim = WlanSim::new(phy(), 1);
        let st = sim.add_station(trace(&[1000], 1500));
        let out = sim.run(Time::MAX);
        let recs = out.records(st);
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        // Immediate access: DIFS (grid-aligned) + exchange; no backoff.
        // Arrival at 1000us, grid anchor 50us + k*20us, so tx at 1050us.
        let p = phy();
        let expected_tx = Time::from_micros(1050);
        assert_eq!(r.rx_end, expected_tx + p.data_airtime(1500));
        assert_eq!(r.done, r.rx_end + p.sifs + p.ack_airtime());
        assert_eq!(r.head, Time::from_micros(1000));
        assert_eq!(r.retries, 0);
        assert!(!r.dropped);
    }

    #[test]
    fn saturated_station_backoffs_every_frame() {
        let mut sim = WlanSim::new(phy(), 2);
        let st = sim.add_station(saturated_source(1500, 200));
        let out = sim.run(Time::MAX);
        let recs = out.records(st);
        assert_eq!(recs.len(), 200);
        let p = phy();
        let exchange = p.success_exchange(1500);
        // Every frame after the first: access delay = DIFS + b*slot + exchange
        // with b in [0, 31].
        let mut backoffs = Vec::new();
        for r in &recs[1..] {
            let overhead = r.access_delay() - exchange - p.difs();
            let slots = overhead.div_dur(p.slot);
            assert_eq!(overhead, p.slot * slots, "backoff must be whole slots");
            assert!(slots <= 31, "slots {slots} out of CWmin range");
            backoffs.push(slots);
        }
        // Mean backoff near 15.5 slots.
        let mean = backoffs.iter().sum::<u64>() as f64 / backoffs.len() as f64;
        assert!((mean - 15.5).abs() < 2.0, "mean backoff {mean}");
        // First frame: no backoff at all (immediate access).
        assert_eq!(recs[0].access_delay(), p.difs() + exchange);
    }

    #[test]
    fn fifo_order_and_headship() {
        // Three packets arriving while the first is in service: each
        // head_since equals the predecessor's completion.
        let mut sim = WlanSim::new(phy(), 3);
        let st = sim.add_station(trace(&[0, 10, 20], 1500));
        let out = sim.run(Time::MAX);
        let recs = out.records(st);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].head, Time::ZERO);
        assert_eq!(recs[1].head, recs[0].done);
        assert_eq!(recs[2].head, recs[1].done);
        // Departures strictly ordered.
        assert!(recs[0].done < recs[1].done && recs[1].done < recs[2].done);
        // Queueing delay of packet 2 spans the service of 0 and 1.
        assert_eq!(recs[2].queueing_delay(), recs[1].done - recs[2].arrival);
    }

    #[test]
    fn standalone_capacity_matches_analytic_cycle() {
        let p = phy();
        let measured = measured_standalone_capacity_bps(&p, 1500, 2000, 42);
        let analytic = 1500.0 * 8.0 / standalone_cycle(&p, 1500).as_secs_f64();
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.02,
            "measured {measured:.0} vs analytic {analytic:.0} ({rel:.3})"
        );
        // And in the paper's ballpark (C ≈ 6.2-6.5 Mb/s).
        assert!((5.9e6..6.6e6).contains(&measured), "{measured}");
    }

    #[test]
    fn two_saturated_stations_share_fairly_and_collide() {
        let mut sim = WlanSim::new(phy(), 7);
        let a = sim.add_station(saturated_source(1500, 3000));
        let b = sim.add_station(saturated_source(1500, 3000));
        let out = sim.run(Time::MAX);
        let horizon = out
            .records(a)
            .last()
            .unwrap()
            .done
            .min(out.records(b).last().unwrap().done);
        let ta = out.throughput_bps(a, horizon);
        let tb = out.throughput_bps(b, horizon);
        // Fairness within 5%.
        let unfairness = (ta - tb).abs() / (ta + tb);
        assert!(unfairness < 0.05, "ta {ta} tb {tb}");
        // Aggregate slightly above stand-alone capacity (two contenders
        // waste less idle backoff; collisions still rare at n=2).
        let agg = ta + tb;
        assert!((5.9e6..6.8e6).contains(&agg), "aggregate {agg}");
        // Collisions do happen for two saturated stations.
        assert!(out.collisions > 0);
        // Collision probability per attempt should be near Bianchi's
        // p = 1-(1-tau)^(n-1); for n=2, W=32, m=5: p ≈ 0.06. Count
        // retries as a proxy.
        let retries: u32 = out.records(a).iter().map(|r| r.retries).sum();
        let p_est = retries as f64 / out.records(a).len() as f64;
        assert!((0.02..0.14).contains(&p_est), "collision rate {p_est}");
    }

    #[test]
    fn unsaturated_station_gets_its_offered_rate() {
        let p = phy();
        let horizon = Time::from_secs_f64(30.0);
        let mut sim = WlanSim::new(p, 11);
        let st = sim.add_station(Box::new(PoissonSource::from_bitrate(
            2_000_000.0,
            SizeModel::Fixed(1500),
            Time::ZERO,
            horizon,
        )));
        let out = sim.run(Time::MAX);
        let tput = out.throughput_bps(st, horizon);
        assert!(
            (tput - 2_000_000.0).abs() / 2_000_000.0 < 0.03,
            "throughput {tput}"
        );
    }

    #[test]
    fn contention_slows_access_delay() {
        // Station A saturated alone vs saturated against a contender:
        // mean access delay must grow.
        let solo = {
            let mut sim = WlanSim::new(phy(), 13);
            let st = sim.add_station(saturated_source(1500, 500));
            let out = sim.run(Time::MAX);
            let d = out.access_delays_s(st);
            d.iter().sum::<f64>() / d.len() as f64
        };
        let contested = {
            let mut sim = WlanSim::new(phy(), 13);
            let st = sim.add_station(saturated_source(1500, 500));
            let _other = sim.add_station(saturated_source(1500, 500));
            let out = sim.run(Time::MAX);
            let d = out.access_delays_s(st);
            d.iter().sum::<f64>() / d.len() as f64
        };
        assert!(
            contested > solo * 1.5,
            "solo {solo:.6} contested {contested:.6}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = WlanSim::new(phy(), seed);
            let a = sim.add_station(saturated_source(1500, 300));
            let _b = sim.add_station(saturated_source(1000, 300));
            let out = sim.run(Time::MAX);
            out.records(a).to_vec()
        };
        let r1 = run(99);
        let r2 = run(99);
        assert_eq!(r1, r2);
        let r3 = run(100);
        assert_ne!(r1, r3);
    }

    #[test]
    fn queue_len_reconstruction() {
        let mut sim = WlanSim::new(phy(), 17);
        let st = sim.add_station(trace(&[0, 10, 20, 30], 1500));
        let out = sim.run(Time::MAX);
        // All four arrive before the first completes (~1.6ms).
        assert_eq!(out.queue_len_at(st, Time::from_micros(35)), 4);
        let recs = out.records(st);
        // Just after the first completion: 3 left.
        assert_eq!(out.queue_len_at(st, recs[0].done), 3);
        // After the last completion: empty.
        assert_eq!(out.queue_len_at(st, recs[3].done), 0);
        // Before anything arrives: empty.
        assert_eq!(out.queue_len_at(st, Time::ZERO.max(Time::ZERO)), 1); // t=0 includes the t=0 arrival
    }

    #[test]
    fn horizon_cuts_the_run() {
        let mut sim = WlanSim::new(phy(), 19);
        let st = sim.add_station(saturated_source(1500, 100_000));
        let horizon = Time::from_secs_f64(0.5);
        let out = sim.run(horizon);
        let recs = out.records(st);
        assert!(!recs.is_empty());
        assert!(recs.len() < 100_000);
        // ~0.5s / ~1.93ms per frame ≈ 259 frames.
        assert!((200..320).contains(&recs.len()), "{}", recs.len());
    }

    #[test]
    fn throughput_window_excludes_outside() {
        let mut sim = WlanSim::new(phy(), 23);
        let st = sim.add_station(saturated_source(1500, 1000));
        let out = sim.run(Time::MAX);
        let t_all = out.throughput_bps(st, out.last_done);
        let t_win =
            out.throughput_bps_window(st, Time::from_secs_f64(0.2), Time::from_secs_f64(0.4));
        // Steady portion should be close to the overall average.
        assert!((t_all - t_win).abs() / t_all < 0.1, "{t_all} vs {t_win}");
    }

    #[test]
    fn different_frame_sizes_coexist() {
        let mut sim = WlanSim::new(phy(), 29);
        let small = sim.add_station(saturated_source(40, 2000));
        let big = sim.add_station(saturated_source(1500, 2000));
        let out = sim.run(Time::MAX);
        let horizon = out
            .records(small)
            .last()
            .unwrap()
            .done
            .min(out.records(big).last().unwrap().done);
        let ts = out.throughput_bps(small, horizon);
        let tb = out.throughput_bps(big, horizon);
        // DCF is per-frame fair, so byte throughput favours big frames.
        assert!(tb > 5.0 * ts, "small {ts} big {tb}");
    }

    #[test]
    fn early_stop_preserves_watched_flow_records() {
        // A probe-like trace against a long-lived cross source: stopping
        // when the trace completes must leave the trace's records
        // bit-identical to the full-horizon run.
        let horizon = Time::from_secs_f64(20.0);
        let build = |stop: bool| {
            let mut sim = WlanSim::new(phy(), 4242);
            let probe = sim.add_station(trace(&[1000, 3000, 5000, 7000, 9000], 1500));
            let _cross = sim.add_station(Box::new(PoissonSource::from_bitrate(
                2_000_000.0,
                SizeModel::Fixed(1500),
                Time::ZERO,
                horizon,
            )));
            if stop {
                sim.stop_after_flow(probe, 0, 5);
            }
            let out = sim.run(horizon);
            (out.records(probe).to_vec(), out.last_done)
        };
        let (full, _) = build(false);
        let (stopped, stopped_last) = build(true);
        assert_eq!(full, stopped);
        // And the stopped run really ended early: nothing after the
        // probe's completion was simulated.
        assert_eq!(stopped_last, stopped.last().unwrap().done);
    }

    #[test]
    fn early_stop_counts_drops_too() {
        // Saturated colliding stations with a tiny retry budget drop
        // frames; the stop rule must count those completions as well
        // and terminate.
        let mut p = phy();
        p.retry_limit = 0;
        let mut sim = WlanSim::new(p, 77);
        let a = sim.add_station(saturated_source(1500, 50));
        let _b = sim.add_station(saturated_source(1500, 50));
        sim.stop_after_flow(a, 0, 10);
        let out = sim.run(Time::MAX);
        assert_eq!(out.records(a).len(), 10);
    }

    #[test]
    fn pool_reuses_buffers_across_runs() {
        let run_once = || {
            let mut sim = WlanSim::new(phy(), 5);
            let st = sim.add_station(trace(&[0, 10, 20], 1500));
            let out = sim.run(Time::MAX);
            assert_eq!(out.records(st).len(), 3);
            out.recycle();
        };
        run_once(); // seeds the pool (queue recycled at teardown)
        let before = sim_pool_reuses();
        run_once(); // must draw both queue and records from the pool
        let after = sim_pool_reuses();
        assert!(
            after >= before + 2,
            "expected ≥2 buffer reuses, got {}",
            after - before
        );
    }

    #[test]
    fn recycled_runs_stay_deterministic() {
        let run_once = || {
            let mut sim = WlanSim::new(phy(), 99);
            let a = sim.add_station(saturated_source(1500, 200));
            let _b = sim.add_station(saturated_source(1000, 200));
            let out = sim.run(Time::MAX);
            let recs = out.records(a).to_vec();
            out.recycle();
            recs
        };
        let r1 = run_once();
        let r2 = run_once();
        assert_eq!(r1, r2);
    }

    #[test]
    fn collision_resolution_eventually_delivers() {
        // Two stations with identical deterministic arrival patterns;
        // they will collide sometimes but everything must be delivered.
        let mut sim = WlanSim::new(phy(), 31);
        let n = 500;
        let a = sim.add_station(saturated_source(1500, n));
        let b = sim.add_station(saturated_source(1500, n));
        let out = sim.run(Time::MAX);
        let delivered = |id| out.records(id).iter().filter(|r| !r.dropped).count();
        // Retry limit 7 with CWmax 1023 makes drops essentially
        // impossible for 2 stations.
        assert_eq!(delivered(a), n);
        assert_eq!(delivered(b), n);
    }
}
