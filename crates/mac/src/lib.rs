//! # csmaprobe-mac
//!
//! An event-driven IEEE 802.11 **DCF (CSMA/CA)** MAC simulator — the
//! NS2-replacement substrate of the reproduction — plus the Bianchi
//! saturation model used as an analytical cross-check.
//!
//! The simulator models a single collision domain (every station hears
//! every other, as in the paper's equally-spaced single-BSS layout)
//! with:
//!
//! * per-station infinite FIFO transmission queues (the paper's NS2
//!   setting: "the queues used are infinite");
//! * slot-synchronised backoff with freezing, binary exponential
//!   contention windows, retry limits, and immediate access after DIFS
//!   on an idle medium;
//! * collisions when two stations' counters expire in the same slot,
//!   occupying the channel for the longest colliding frame plus the
//!   ACK-timeout;
//! * exact integer-nanosecond per-packet timestamps: queue arrival,
//!   head-of-queue instant, receiver (data-end) time, and completion
//!   (ACK-end) time.
//!
//! The **access delay** `μ_i` of the paper — "the delay since they are
//! at the head of the transmission (FIFO) queue until they are
//! completely transmitted (i.e. scheduling + transmission time)" — is
//! [`PacketRecord::access_delay`].
//!
//! Modelling simplifications (all documented in `DESIGN.md`): EIFS
//! after collisions is folded into a common channel-busy interval of
//! `max(colliding airtimes) + SIFS + ACK`, so all stations stay on one
//! slot grid; a station whose queue empties does not carry residual
//! post-backoff to the next packet (NS2 2.29's stock MAC behaves the
//! same way); immediate access is quantised to the current slot grid,
//! which preserves the slot-level collision vulnerability window.
//!
//! ```
//! use csmaprobe_mac::{saturated_source, WlanSim};
//! use csmaprobe_phy::Phy;
//! use csmaprobe_desim::time::Time;
//!
//! // Two saturated stations contending for 20 frames each.
//! let mut sim = WlanSim::new(Phy::dsss_11mbps(), 42);
//! let a = sim.add_station(saturated_source(1500, 20));
//! let b = sim.add_station(saturated_source(1500, 20));
//! let out = sim.run(Time::MAX);
//! assert_eq!(out.records(a).len(), 20);
//! assert_eq!(out.records(b).len(), 20);
//! // Every record carries the paper's access delay μ.
//! assert!(out.records(a)[1].access_delay().as_micros_f64() > 0.0);
//! ```

pub mod bianchi;
pub mod bianchi_nonsat;
pub mod options;
pub mod sim;
pub mod slotted;
pub mod slotted_batch;

pub use bianchi::BianchiModel;
pub use bianchi_nonsat::{NonSatError, NonSatModel, NonSatStation};
pub use options::MacOptions;
pub use sim::{ChannelStats, PacketRecord, SimOutput, StationId, WlanSim};
pub use slotted::{BackoffDraw, SlottedFlow, SlottedOutput, SlottedSim};
pub use slotted_batch::BatchedSlottedSim;

use csmaprobe_desim::time::{Dur, Time};
use csmaprobe_phy::Phy;
use csmaprobe_traffic::{PacketArrival, SizeModel, TraceSource};

/// Measure the stand-alone saturation throughput (the paper's capacity
/// `C`) of one station sending `bytes`-byte frames: simulate `packets`
/// back-to-back frames with nobody contending and divide delivered bits
/// by elapsed time.
///
/// This is the normaliser for offered loads expressed in Erlangs
/// (Fig 10).
pub fn measured_standalone_capacity_bps(phy: &Phy, bytes: u32, packets: usize, seed: u64) -> f64 {
    let mut sim = WlanSim::new(phy.clone(), seed);
    // All packets queued at t=0: the station stays saturated throughout.
    let st = sim.add_station(saturated_source(bytes, packets));
    let out = sim.run(Time::MAX);
    let recs = out.records(st);
    assert_eq!(recs.len(), packets);
    let first = recs.first().unwrap();
    let last = recs.last().unwrap();
    // Skip the first frame: it gets immediate access and would bias the
    // cycle estimate.
    let bits = (packets as f64 - 1.0) * bytes as f64 * 8.0;
    bits / (last.done - first.done).as_secs_f64()
}

/// Convenience constructor for saturated-station simulations: a source
/// whose queue never empties (everything arrives at t = 0).
pub fn saturated_source(bytes: u32, packets: usize) -> Box<TraceSource> {
    let arrivals: Vec<PacketArrival> = (0..packets)
        .map(|_| PacketArrival::new(Time::ZERO, bytes))
        .collect();
    Box::new(TraceSource::new(arrivals))
}

/// The mean DCF overhead cycle for a lone station (DIFS plus mean
/// backoff plus exchange) — analytic counterpart of
/// [`measured_standalone_capacity_bps`].
pub fn standalone_cycle(phy: &Phy, bytes: u32) -> Dur {
    let mean_backoff = phy.slot * (phy.cw_min as u64) / 2;
    phy.difs() + mean_backoff + phy.success_exchange(bytes)
}

/// Helper: a [`SizeModel`] matching the paper's common 1500-byte probe
/// and cross-traffic frames.
pub fn paper_frame() -> SizeModel {
    SizeModel::Fixed(1500)
}
