//! Replication-batched slotted DCF kernel.
//!
//! [`SlottedSim`](crate::slotted::SlottedSim) runs one replication per
//! call: one event loop, one set of station structs, one trace clone.
//! Measurement cells, however, execute dozens of replications of the
//! *same* configuration that differ only in the master seed. This
//! module runs N such replications ("lanes") through one kernel call:
//! station state — backoff counters, contention-window stages, freeze
//! flags, queue depths, grid anchors — lives in structure-of-arrays
//! scratch sized to the station count, so the per-event passes
//! (earliest arrival, earliest candidate transmission, freeze,
//! re-anchor) are tight loops over flat `u32`/`u64` arrays instead of
//! pointer chases through per-replication simulators. Lanes execute as
//! *blocks* — each lane's event loop runs to completion over the shared
//! scratch before the next lane starts — because interleaving
//! independent lanes event-by-event scrambles the branch history of the
//! contention state machine and measurably regresses both debug and
//! release builds.
//!
//! Lanes are completely independent: lane `l` keeps its own channel
//! state and every station `i` of lane `l` draws from
//! `SimRng::new(derive_seed(seeds[l], i + 1))` — exactly the scalar
//! kernel's stream contract. Every draw site (feed pulls, backoff
//! draws, frame-error draws, rearm draws) happens in the same
//! within-stream order as the scalar loop, and all time arithmetic
//! replicates the `Time`/`Dur` operators on raw nanosecond integers,
//! so the output of [`BatchedSlottedSim::run`] is **bit-identical** to
//! N scalar [`SlottedSim`](crate::slotted::SlottedSim) runs
//! (`tests/slotted_batch_property.rs` proves this property-wise; the
//! unit tests below pin it per regime).
//!
//! What batching buys beyond locality: probe traces are stored once
//! and shared read-only across lanes (the scalar path clones the
//! arrival vector per replication), contention winners are resolved
//! through a `u64` station bitmask instead of a per-event `Vec`, and
//! per-replication constructor work (station vectors, window
//! accounting slots) is amortised over the whole chunk. The win is
//! real but bounded: the per-event cost of a bit-identical kernel is
//! dominated by the mandatory RNG draws and queue operations the
//! scalar kernel already pays, so `bench`'s `tier_speedup` gates the
//! batched leg on bit-identity plus a no-regression margin and reports
//! the measured chunk speedup in its wallclock channel (see
//! EXPERIMENTS.md for the floor analysis).

use crate::options::MacOptions;
use crate::sim::{PacketRecord, StationId};
use crate::slotted::{SlottedFlow, SlottedOutput};
use csmaprobe_desim::rng::{derive_seed, SimRng};
use csmaprobe_desim::time::Time;
use csmaprobe_phy::Phy;
use csmaprobe_traffic::{CbrSource, PacketArrival, PoissonSource, SizeModel, Source};
use std::collections::VecDeque;

/// Per-flow configuration resolved at [`BatchedSlottedSim::add_station`]
/// time: traces are interned into the shared pool so lanes replay them
/// without cloning.
#[derive(Debug, Clone)]
enum FlowCfg {
    /// Index into the shared trace pool.
    Trace(usize),
    Saturated {
        bytes: u32,
        packets: u64,
    },
    Poisson {
        rate_bps: f64,
        bytes: u32,
        flow: u16,
        start: Time,
        until: Time,
    },
    Cbr {
        rate_bps: f64,
        bytes: u32,
        flow: u16,
        start: Time,
        until: Time,
    },
}

/// One lane's instance of a flow source. Identical draw sites to the
/// scalar kernel's `FlowSrc` (Poisson/CBR *are* the same source
/// implementations); traces read from the shared pool.
enum LaneSrc {
    Trace { trace: usize, idx: usize },
    Saturated { bytes: u32, left: u64 },
    Poisson(PoissonSource),
    Cbr(CbrSource),
}

impl LaneSrc {
    fn next(&mut self, rng: &mut SimRng, traces: &[Vec<PacketArrival>]) -> Option<PacketArrival> {
        match self {
            LaneSrc::Trace { trace, idx } => {
                let p = traces[*trace].get(*idx).copied();
                if p.is_some() {
                    *idx += 1;
                }
                p
            }
            LaneSrc::Saturated { bytes, left } => {
                if *left == 0 {
                    return None;
                }
                *left -= 1;
                Some(PacketArrival::new(Time::ZERO, *bytes))
            }
            LaneSrc::Poisson(s) => s.next_packet(rng),
            LaneSrc::Cbr(s) => s.next_packet(rng),
        }
    }
}

impl FlowCfg {
    fn build(&self) -> LaneSrc {
        match self {
            FlowCfg::Trace(trace) => LaneSrc::Trace {
                trace: *trace,
                idx: 0,
            },
            FlowCfg::Saturated { bytes, packets } => LaneSrc::Saturated {
                bytes: *bytes,
                left: *packets,
            },
            FlowCfg::Poisson {
                rate_bps,
                bytes,
                flow,
                start,
                until,
            } => LaneSrc::Poisson(
                PoissonSource::from_bitrate(*rate_bps, SizeModel::Fixed(*bytes), *start, *until)
                    .with_flow(*flow),
            ),
            FlowCfg::Cbr {
                rate_bps,
                bytes,
                flow,
                start,
                until,
            } => LaneSrc::Cbr(
                CbrSource::from_bitrate(*rate_bps, SizeModel::Fixed(*bytes), *start, *until)
                    .with_flow(*flow),
            ),
        }
    }
}

/// One lane-station's merged arrival feed — the scalar kernel's `Feed`
/// semantics verbatim: single-flow stations pull straight from the
/// source; multi-flow stations keep one look-ahead per sub-source,
/// primed in order on first pull, ties resolved to the earlier-added
/// flow.
enum LaneFeed {
    Single(LaneSrc),
    Merged {
        sources: Vec<LaneSrc>,
        pending: Vec<Option<PacketArrival>>,
        primed: bool,
    },
}

impl LaneFeed {
    fn next(&mut self, rng: &mut SimRng, traces: &[Vec<PacketArrival>]) -> Option<PacketArrival> {
        match self {
            LaneFeed::Single(src) => src.next(rng, traces),
            LaneFeed::Merged {
                sources,
                pending,
                primed,
            } => {
                if !*primed {
                    for (i, s) in sources.iter_mut().enumerate() {
                        pending[i] = s.next(rng, traces);
                    }
                    *primed = true;
                }
                let mut best: Option<usize> = None;
                for (i, p) in pending.iter().enumerate() {
                    if let Some(pkt) = p {
                        match best {
                            Some(b) if pending[b].unwrap().time <= pkt.time => {}
                            _ => best = Some(i),
                        }
                    }
                }
                let i = best?;
                let out = pending[i].take();
                pending[i] = sources[i].next(rng, traces);
                out
            }
        }
    }
}

/// Sentinel for "no pending arrival" / "not contending" in the flat
/// time arrays — `Time::MAX.0`.
const NONE: u64 = u64::MAX;

/// The replication-batched slotted simulator. Builder API mirrors
/// [`SlottedSim`](crate::slotted::SlottedSim), except construction
/// takes one master seed *per lane* and [`run`](Self::run) returns one
/// [`SlottedOutput`] per lane, each bit-identical to the scalar kernel
/// run with the corresponding seed.
pub struct BatchedSlottedSim {
    phy: Phy,
    seeds: Vec<u64>,
    options: MacOptions,
    stations: Vec<StationCfg>,
    traces: Vec<Vec<PacketArrival>>,
    stop_rule: Option<(usize, u16, usize)>,
    watch: Option<(usize, u16)>,
    window: Option<(Time, Time)>,
}

struct StationCfg {
    flows: Vec<FlowCfg>,
    flow_tags: Vec<u16>,
}

impl BatchedSlottedSim {
    /// A batched simulation over `phy`, one lane per entry of `seeds`.
    /// Any lane count ≥ 1 works; ragged final chunks simply pass fewer
    /// seeds.
    pub fn new(phy: Phy, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "batch needs at least one lane");
        BatchedSlottedSim {
            phy,
            seeds,
            options: MacOptions::default(),
            stations: Vec::new(),
            traces: Vec::new(),
            stop_rule: None,
            watch: None,
            window: None,
        }
    }

    /// Builder-style MAC options override.
    pub fn with_options(mut self, options: MacOptions) -> Self {
        self.options = options;
        self
    }

    /// Number of lanes (replications) this batch advances.
    pub fn lanes(&self) -> usize {
        self.seeds.len()
    }

    /// Attach a station to **every** lane, fed by the merged `flows`.
    /// Station ids are dense indices in attach order; lane `l`'s
    /// instance draws from `SimRng::new(derive_seed(seeds[l], idx + 1))`
    /// — the scalar kernel's per-replication contract.
    pub fn add_station(&mut self, flows: Vec<SlottedFlow>) -> StationId {
        assert!(!flows.is_empty(), "station needs at least one flow");
        let idx = self.stations.len();
        assert!(idx < 64, "batched kernel supports at most 64 stations");
        let mut flow_tags: Vec<u16> = Vec::with_capacity(flows.len());
        let mut cfgs: Vec<FlowCfg> = Vec::with_capacity(flows.len());
        for f in flows {
            let tag = match &f {
                SlottedFlow::Trace(arrivals) => arrivals.first().map(|p| p.flow).unwrap_or(0),
                SlottedFlow::Saturated { .. } => 0,
                SlottedFlow::Poisson { flow, .. } | SlottedFlow::Cbr { flow, .. } => *flow,
            };
            if !flow_tags.contains(&tag) {
                flow_tags.push(tag);
            }
            cfgs.push(match f {
                SlottedFlow::Trace(arrivals) => {
                    for w in arrivals.windows(2) {
                        assert!(
                            w[1].time >= w[0].time,
                            "trace arrivals must be time-ordered"
                        );
                    }
                    self.traces.push(arrivals);
                    FlowCfg::Trace(self.traces.len() - 1)
                }
                SlottedFlow::Saturated { bytes, packets } => FlowCfg::Saturated { bytes, packets },
                SlottedFlow::Poisson {
                    rate_bps,
                    bytes,
                    flow,
                    start,
                    until,
                } => FlowCfg::Poisson {
                    rate_bps,
                    bytes,
                    flow,
                    start,
                    until,
                },
                SlottedFlow::Cbr {
                    rate_bps,
                    bytes,
                    flow,
                    start,
                    until,
                } => FlowCfg::Cbr {
                    rate_bps,
                    bytes,
                    flow,
                    start,
                    until,
                },
            });
        }
        self.stations.push(StationCfg {
            flows: cfgs,
            flow_tags,
        });
        StationId(idx)
    }

    /// Stop a lane once its `station` has completed `count` packets of
    /// `flow` (applies per lane, independently).
    pub fn stop_after_flow(&mut self, station: StationId, flow: u16, count: usize) {
        self.stop_rule = Some((station.0, flow, count));
    }

    /// Keep full [`PacketRecord`]s for one station's flow, per lane.
    pub fn watch_flow(&mut self, station: StationId, flow: u16) {
        self.watch = Some((station.0, flow));
    }

    /// Count delivered bits only for frames whose `rx_end` falls in
    /// `(from, to]`, per lane.
    pub fn set_window(&mut self, from: Time, to: Time) {
        debug_assert!(to > from);
        self.window = Some((from, to));
    }

    /// Idle-grid alignment on raw nanoseconds — `SlottedSim::align_up`
    /// with the `Time`/`Dur` operators unfolded (they are plain `u64`
    /// add/sub/mul/div-ceil, so this is bit-identical).
    #[inline]
    fn align_up_ns(anchor: u64, slot: u64, t: u64) -> u64 {
        if t <= anchor {
            return anchor;
        }
        anchor + slot * (t - anchor).div_ceil(slot)
    }

    /// Run every lane until `horizon` (exclusive) or until no event
    /// remains in it, returning one output per lane in seed order.
    ///
    /// Lanes execute as blocks — each lane's event loop runs to
    /// completion over the shared station-SoA scratch before the next
    /// lane starts — so the branch history of the contention state
    /// machine stays coherent (interleaving independent lanes
    /// event-by-event measurably regresses both debug and release
    /// builds), while every per-replication fixed cost (station
    /// arrays, queues, window slots, trace storage) is paid once per
    /// batch instead of once per replication.
    pub fn run(self, horizon: Time) -> Vec<SlottedOutput> {
        let n_st = self.stations.len();
        let horizon = horizon.0;
        let slot = self.phy.slot.0;
        let difs = self.phy.difs().0;
        let sifs = self.phy.sifs.0;
        let ack_air = self.phy.ack_airtime().0;
        let ack_timeout = self.phy.ack_timeout().0;
        let rts_air = self.phy.rts_airtime().0;
        let rts_preface = self.phy.rts_cts_preface().0;
        let retry_limit = self.phy.retry_limit;
        let fer = self.options.frame_error_rate;
        let immediate_access = self.options.immediate_access;
        let watch = self.watch;
        let window = self.window.map(|(f, t)| (f.0, t.0));
        // Backoff windows per stage; `stage` never exceeds
        // `retry_limit` at a draw site (a higher stage is reset before
        // the next draw), but size one past it to be safe.
        let cw: Vec<u32> = (0..=retry_limit + 1)
            .map(|s| self.phy.cw_at_stage(s))
            .collect();

        // ---- station-SoA scratch, one lane's worth, reused across lanes ----
        let mut src_rng: Vec<SimRng> = Vec::with_capacity(n_st);
        let mut feed: Vec<LaneFeed> = Vec::with_capacity(n_st);
        let mut next_time: Vec<u64> = vec![NONE; n_st];
        let mut next_bytes: Vec<u32> = vec![0; n_st];
        let mut next_flow: Vec<u16> = vec![0; n_st];
        let mut queue: Vec<VecDeque<(u64, u32, u16)>> =
            (0..n_st).map(|_| VecDeque::new()).collect();
        let mut head_since: Vec<u64> = vec![0; n_st];
        let mut slots_left: Vec<u32> = vec![0; n_st];
        let mut count_start: Vec<u64> = vec![0; n_st];
        let mut contending: Vec<bool> = vec![false; n_st];
        let mut stage: Vec<u32> = vec![0; n_st];
        let mut retries: Vec<u32> = vec![0; n_st];
        // Candidate transmission instants, refreshed by the per-event
        // scan pass (`NONE` when the station is not contending).
        let mut tx: Vec<u64> = vec![NONE; n_st];

        let flow_tags: Vec<Vec<u16>> = self
            .stations
            .iter()
            .map(|st| st.flow_tags.clone())
            .collect();
        let stop_rule = self.stop_rule;
        let traces = &self.traces;
        let mut outputs: Vec<SlottedOutput> = Vec::with_capacity(self.seeds.len());

        for &lane_seed in &self.seeds {
            // ---- reset the shared scratch for this lane ----
            src_rng.clear();
            feed.clear();
            for (s_idx, st) in self.stations.iter().enumerate() {
                src_rng.push(SimRng::new(derive_seed(lane_seed, s_idx as u64 + 1)));
                let mut sources: Vec<LaneSrc> = st.flows.iter().map(|f| f.build()).collect();
                feed.push(if sources.len() == 1 {
                    LaneFeed::Single(sources.pop().unwrap())
                } else {
                    let m = sources.len();
                    LaneFeed::Merged {
                        sources,
                        pending: vec![None; m],
                        primed: false,
                    }
                });
            }
            for s in 0..n_st {
                queue[s].clear();
                head_since[s] = 0;
                slots_left[s] = 0;
                count_start[s] = 0;
                contending[s] = false;
                stage[s] = 0;
                retries[s] = 0;
                // Prime the arrival look-ahead (the scalar kernel's
                // first feed pull per station, in station order).
                match feed[s].next(&mut src_rng[s], traces) {
                    Some(p) => {
                        next_time[s] = p.time.0;
                        next_bytes[s] = p.bytes;
                        next_flow[s] = p.flow;
                    }
                    None => next_time[s] = NONE,
                }
            }
            let mut channel_free_at = 0u64;
            let mut last_done = 0u64;
            let mut collisions = 0u64;
            let mut stop_remaining = stop_rule.map(|(_, _, c)| c).unwrap_or(usize::MAX);
            let mut records: Vec<PacketRecord> = Vec::new();
            let mut window_bits: Vec<Vec<u64>> = flow_tags
                .iter()
                .map(|tags| vec![0u64; tags.len()])
                .collect();

            macro_rules! draw_backoff {
                ($s:expr, $stage:expr) => {
                    src_rng[$s].range_inclusive(0, cw[$stage as usize] as u64) as u32
                };
            }
            macro_rules! rearm {
                ($s:expr, $done:expr) => {{
                    stage[$s] = 0;
                    retries[$s] = 0;
                    if queue[$s].is_empty() {
                        contending[$s] = false;
                    } else {
                        head_since[$s] = $done;
                        slots_left[$s] = draw_backoff!($s, 0);
                        contending[$s] = true;
                        // count_start is set by the re-anchor pass.
                    }
                }};
            }
            macro_rules! stop_dec {
                ($s:expr, $flow:expr) => {
                    if let Some((ss, sf, _)) = stop_rule {
                        if ss == $s && sf == $flow {
                            stop_remaining = stop_remaining.saturating_sub(1);
                        }
                    }
                };
            }
            macro_rules! credit {
                ($s:expr, $flow:expr, $bytes:expr, $rx_end:expr) => {{
                    let in_window = match window {
                        Some((from, to)) => $rx_end > from && $rx_end <= to,
                        None => true,
                    };
                    if in_window {
                        if let Some(slot_idx) = flow_tags[$s].iter().position(|&tag| tag == $flow) {
                            window_bits[$s][slot_idx] += $bytes as u64 * 8;
                        }
                    }
                }};
            }

            // ---- this lane's event loop (the scalar kernel's loop
            // over flat arrays, winners as a station bitmask) ----
            loop {
                if stop_remaining == 0 {
                    break;
                }

                // Earliest pending arrival; strict `<` keeps the
                // lowest station index on ties, as the scalar scan.
                let mut next_arr = NONE;
                let mut arr_st = 0usize;
                // Earliest candidate transmission; the per-station
                // candidates land in `tx` for the winner pass below.
                let mut next_tx = NONE;
                for s in 0..n_st {
                    let ta = next_time[s];
                    if ta < next_arr {
                        next_arr = ta;
                        arr_st = s;
                    }
                    let cand = (count_start[s] + slot * slots_left[s] as u64)
                        | if contending[s] { 0 } else { NONE };
                    tx[s] = cand;
                    if cand < next_tx {
                        next_tx = cand;
                    }
                }

                let next_event = next_arr.min(next_tx);
                if next_event == NONE || next_event >= horizon {
                    break;
                }

                if next_arr <= next_tx {
                    // ---- arrival ----
                    let s = arr_st;
                    let pkt_time = next_time[s];
                    let pkt_bytes = next_bytes[s];
                    let pkt_flow = next_flow[s];
                    match feed[s].next(&mut src_rng[s], traces) {
                        Some(p) => {
                            debug_assert!(
                                p.time.0 >= pkt_time,
                                "flow emitted decreasing arrival times"
                            );
                            next_time[s] = p.time.0;
                            next_bytes[s] = p.bytes;
                            next_flow[s] = p.flow;
                        }
                        None => next_time[s] = NONE,
                    }
                    queue[s].push_back((pkt_time, pkt_bytes, pkt_flow));
                    if queue[s].len() == 1 {
                        head_since[s] = pkt_time;
                        stage[s] = 0;
                        retries[s] = 0;
                        contending[s] = true;
                        if pkt_time < channel_free_at {
                            slots_left[s] = draw_backoff!(s, 0);
                            count_start[s] = channel_free_at + difs;
                        } else {
                            let anchor = channel_free_at + difs;
                            slots_left[s] = if immediate_access {
                                0
                            } else {
                                draw_backoff!(s, 0)
                            };
                            count_start[s] = Self::align_up_ns(anchor, slot, pkt_time + difs);
                        }
                    }
                    continue;
                }

                // ---- transmission(s) at t = next_tx ----
                let t = next_tx;
                // Winner set as a station bitmask, snapshotted from the
                // scan pass before the freeze pass rewrites counters.
                let mut winners = 0u64;
                for (s, &cand) in tx.iter().enumerate() {
                    winners |= ((cand == t) as u64) << s;
                }
                debug_assert!(winners != 0);

                // Freeze every other contending station.
                for s in 0..n_st {
                    if winners & (1 << s) != 0 || !contending[s] {
                        continue;
                    }
                    if count_start[s] <= t {
                        let elapsed = ((t - count_start[s]) / slot) as u32;
                        debug_assert!(
                            slots_left[s] > elapsed,
                            "non-winner should not have expired"
                        );
                        slots_left[s] -= elapsed;
                    } else if slots_left[s] == 0 {
                        // Lost its immediate-access opportunity to this
                        // busy period: must back off like everyone else.
                        slots_left[s] = draw_backoff!(s, stage[s]);
                    }
                }

                let busy_end;
                if winners.count_ones() == 1 {
                    let w = winners.trailing_zeros() as usize;
                    let failed = fer > 0.0 && src_rng[w].f64() < fer;
                    let (arrival, bytes, flow) =
                        *queue[w].front().expect("winner with empty queue");
                    let preface = if self.options.uses_rts(bytes) {
                        rts_preface
                    } else {
                        0
                    };
                    let data = self.phy.data_airtime(bytes).0;
                    if failed {
                        // ---- corrupted data frame: no ACK, BEB retry ----
                        let fail_end = t + preface + data + ack_timeout;
                        retries[w] += 1;
                        stage[w] += 1;
                        if retries[w] > retry_limit {
                            if watch == Some((w, flow)) {
                                records.push(PacketRecord {
                                    arrival: Time(arrival),
                                    head: Time(head_since[w]),
                                    rx_end: Time(t + preface + data),
                                    done: Time(fail_end),
                                    bytes,
                                    retries: retries[w],
                                    dropped: true,
                                    flow,
                                });
                            }
                            stop_dec!(w, flow);
                            last_done = last_done.max(fail_end);
                            queue[w].pop_front();
                            rearm!(w, fail_end);
                        } else {
                            slots_left[w] = draw_backoff!(w, stage[w]);
                        }
                        busy_end = fail_end;
                    } else {
                        // ---- success ----
                        let rx_end = t + preface + data;
                        let done = rx_end + sifs + ack_air;
                        if watch == Some((w, flow)) {
                            records.push(PacketRecord {
                                arrival: Time(arrival),
                                head: Time(head_since[w]),
                                rx_end: Time(rx_end),
                                done: Time(done),
                                bytes,
                                retries: retries[w],
                                dropped: false,
                                flow,
                            });
                        }
                        credit!(w, flow, bytes, rx_end);
                        stop_dec!(w, flow);
                        last_done = last_done.max(done);
                        queue[w].pop_front();
                        rearm!(w, done);
                        busy_end = done;
                    }
                } else {
                    // ---- collision ----
                    collisions += 1;
                    let mut max_frame = 0u64;
                    let mut m = winners;
                    while m != 0 {
                        let s = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let (_, bytes, _) = *queue[s].front().unwrap();
                        let air = if self.options.uses_rts(bytes) {
                            // RTS/CTS: only the short RTS collides.
                            rts_air
                        } else {
                            self.phy.data_airtime(bytes).0
                        };
                        max_frame = max_frame.max(air);
                    }
                    busy_end = t + max_frame + sifs + ack_air;
                    // Ascending station order, as the scalar loop.
                    let mut m = winners;
                    while m != 0 {
                        let s = m.trailing_zeros() as usize;
                        m &= m - 1;
                        retries[s] += 1;
                        stage[s] += 1;
                        if retries[s] > retry_limit {
                            // Drop the frame.
                            let (arrival, bytes, flow) = *queue[s].front().unwrap();
                            if watch == Some((s, flow)) {
                                records.push(PacketRecord {
                                    arrival: Time(arrival),
                                    head: Time(head_since[s]),
                                    rx_end: Time(t + self.phy.data_airtime(bytes).0),
                                    done: Time(busy_end),
                                    bytes,
                                    retries: retries[s],
                                    dropped: true,
                                    flow,
                                });
                            }
                            stop_dec!(s, flow);
                            last_done = last_done.max(busy_end);
                            queue[s].pop_front();
                            rearm!(s, busy_end);
                        } else {
                            slots_left[s] = draw_backoff!(s, stage[s]);
                        }
                    }
                }

                channel_free_at = busy_end;
                // Re-anchor every contending station on the new idle
                // grid (predicated store over the flat array).
                let anchor = busy_end + difs;
                for s in 0..n_st {
                    if contending[s] {
                        count_start[s] = anchor;
                    }
                }
            }

            outputs.push(SlottedOutput {
                records,
                collisions,
                last_done: Time(last_done),
                window_bits,
                flow_tags: flow_tags.clone(),
                backoffs: Vec::new(),
            });
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slotted::SlottedSim;
    use csmaprobe_desim::time::Dur;

    fn phy() -> Phy {
        Phy::dsss_11mbps()
    }

    /// Scalar reference: one `SlottedSim` run per seed.
    fn scalar_outputs(
        seeds: &[u64],
        stations: &[Vec<SlottedFlow>],
        watch: Option<(usize, u16)>,
        stop: Option<(usize, u16, usize)>,
        window: Option<(Time, Time)>,
        horizon: Time,
        options: MacOptions,
    ) -> Vec<SlottedOutput> {
        seeds
            .iter()
            .map(|&seed| {
                let mut sim = SlottedSim::new(phy(), seed).with_options(options);
                let mut ids = Vec::new();
                for flows in stations {
                    ids.push(sim.add_station(flows.clone()));
                }
                if let Some((s, f)) = watch {
                    sim.watch_flow(ids[s], f);
                }
                if let Some((s, f, c)) = stop {
                    sim.stop_after_flow(ids[s], f, c);
                }
                if let Some((from, to)) = window {
                    sim.set_window(from, to);
                }
                sim.run(horizon)
            })
            .collect()
    }

    fn batched_outputs(
        seeds: &[u64],
        stations: &[Vec<SlottedFlow>],
        watch: Option<(usize, u16)>,
        stop: Option<(usize, u16, usize)>,
        window: Option<(Time, Time)>,
        horizon: Time,
        options: MacOptions,
    ) -> Vec<SlottedOutput> {
        let mut sim = BatchedSlottedSim::new(phy(), seeds.to_vec()).with_options(options);
        let mut ids = Vec::new();
        for flows in stations {
            ids.push(sim.add_station(flows.clone()));
        }
        if let Some((s, f)) = watch {
            sim.watch_flow(ids[s], f);
        }
        if let Some((s, f, c)) = stop {
            sim.stop_after_flow(ids[s], f, c);
        }
        if let Some((from, to)) = window {
            sim.set_window(from, to);
        }
        sim.run(horizon)
    }

    fn assert_lanes_match(scalar: &[SlottedOutput], batched: &[SlottedOutput]) {
        assert_eq!(scalar.len(), batched.len());
        for (l, (sc, ba)) in scalar.iter().zip(batched).enumerate() {
            assert_eq!(sc.records, ba.records, "records differ in lane {l}");
            assert_eq!(
                sc.collisions, ba.collisions,
                "collisions differ in lane {l}"
            );
            assert_eq!(sc.last_done, ba.last_done, "last_done differs in lane {l}");
            assert_eq!(
                sc.window_bits, ba.window_bits,
                "window_bits differ in lane {l}"
            );
            assert_eq!(sc.flow_tags, ba.flow_tags, "flow_tags differ in lane {l}");
        }
    }

    #[test]
    fn saturated_pair_bit_identical_across_lanes() {
        let cfg = vec![
            vec![SlottedFlow::Saturated {
                bytes: 1500,
                packets: 200,
            }],
            vec![SlottedFlow::Saturated {
                bytes: 1000,
                packets: 200,
            }],
        ];
        let seeds: Vec<u64> = (0..7).map(|i| 1000 + i * 17).collect();
        let sc = scalar_outputs(
            &seeds,
            &cfg,
            Some((0, 0)),
            None,
            None,
            Time::MAX,
            MacOptions::default(),
        );
        let ba = batched_outputs(
            &seeds,
            &cfg,
            Some((0, 0)),
            None,
            None,
            Time::MAX,
            MacOptions::default(),
        );
        assert!(sc.iter().all(|o| o.records.len() == 200));
        assert_lanes_match(&sc, &ba);
    }

    #[test]
    fn cbr_probe_against_poisson_cross_bit_identical() {
        let end = Time::from_secs_f64(2.0);
        let cfg = vec![
            vec![SlottedFlow::Cbr {
                rate_bps: 5_000_000.0,
                bytes: 1500,
                flow: 1,
                start: Time::from_millis(500),
                until: end,
            }],
            vec![SlottedFlow::Poisson {
                rate_bps: 4_500_000.0,
                bytes: 1500,
                flow: 0,
                start: Time::ZERO,
                until: end,
            }],
        ];
        let mid = Time::from_secs_f64(1.0);
        let seeds = [3u64, 99, 0xC0FFEE];
        let horizon = end + Dur::from_secs(2);
        let sc = scalar_outputs(
            &seeds,
            &cfg,
            Some((0, 1)),
            None,
            Some((mid, end)),
            horizon,
            MacOptions::default(),
        );
        let ba = batched_outputs(
            &seeds,
            &cfg,
            Some((0, 1)),
            None,
            Some((mid, end)),
            horizon,
            MacOptions::default(),
        );
        assert!(sc.iter().all(|o| !o.records.is_empty()));
        assert_lanes_match(&sc, &ba);
    }

    #[test]
    fn merged_fifo_cross_with_stop_rule_bit_identical() {
        // The probe-train station layout: shared trace arrivals plus a
        // Poisson FIFO cross in one queue, one contender, early stop
        // after the train completes.
        let probe: Vec<PacketArrival> = (0..60)
            .map(|i| PacketArrival {
                time: Time::from_millis(500) + Dur::from_micros(3000) * i as u64,
                bytes: 1500,
                flow: 1,
            })
            .collect();
        let end = Time::from_secs_f64(2.0);
        let cfg = vec![
            vec![
                SlottedFlow::Trace(probe),
                SlottedFlow::Poisson {
                    rate_bps: 1_500_000.0,
                    bytes: 1500,
                    flow: 2,
                    start: Time::ZERO,
                    until: end,
                },
            ],
            vec![SlottedFlow::Poisson {
                rate_bps: 3_000_000.0,
                bytes: 1500,
                flow: 0,
                start: Time::ZERO,
                until: end,
            }],
        ];
        let seeds: Vec<u64> = (0..5).map(|i| 0xBEEF + i).collect();
        let sc = scalar_outputs(
            &seeds,
            &cfg,
            Some((0, 1)),
            Some((0, 1, 60)),
            None,
            Time::MAX,
            MacOptions::default(),
        );
        let ba = batched_outputs(
            &seeds,
            &cfg,
            Some((0, 1)),
            Some((0, 1, 60)),
            None,
            Time::MAX,
            MacOptions::default(),
        );
        assert!(sc.iter().all(|o| o.records.len() == 60));
        assert_lanes_match(&sc, &ba);
    }

    #[test]
    fn frame_errors_and_rts_bit_identical() {
        let opts = MacOptions::default()
            .with_frame_error_rate(0.2)
            .with_rts_cts(500);
        let cfg = vec![
            vec![SlottedFlow::Saturated {
                bytes: 1500,
                packets: 150,
            }],
            vec![SlottedFlow::Saturated {
                bytes: 1500,
                packets: 150,
            }],
        ];
        let seeds = [13u64, 17];
        let sc = scalar_outputs(&seeds, &cfg, Some((0, 0)), None, None, Time::MAX, opts);
        let ba = batched_outputs(&seeds, &cfg, Some((0, 0)), None, None, Time::MAX, opts);
        assert!(sc.iter().any(|o| o.records.iter().any(|r| r.retries > 0)));
        assert_lanes_match(&sc, &ba);
    }

    #[test]
    fn single_lane_degenerates_to_scalar() {
        let cfg = vec![vec![SlottedFlow::Saturated {
            bytes: 1500,
            packets: 100,
        }]];
        let sc = scalar_outputs(
            &[42],
            &cfg,
            Some((0, 0)),
            None,
            None,
            Time::MAX,
            MacOptions::default(),
        );
        let ba = batched_outputs(
            &[42],
            &cfg,
            Some((0, 0)),
            None,
            None,
            Time::MAX,
            MacOptions::default(),
        );
        assert_lanes_match(&sc, &ba);
    }

    #[test]
    fn without_immediate_access_bit_identical() {
        let opts = MacOptions::default().without_immediate_access();
        let end = Time::from_secs_f64(1.0);
        let cfg = vec![vec![SlottedFlow::Poisson {
            rate_bps: 1_000_000.0,
            bytes: 1500,
            flow: 0,
            start: Time::ZERO,
            until: end,
        }]];
        let seeds = [19u64, 23, 29];
        let sc = scalar_outputs(&seeds, &cfg, Some((0, 0)), None, None, end, opts);
        let ba = batched_outputs(&seeds, &cfg, Some((0, 0)), None, None, end, opts);
        assert!(sc.iter().all(|o| !o.records.is_empty()));
        assert_lanes_match(&sc, &ba);
    }
}
