//! Bianchi's saturation model of the DCF (the paper's reference \[8\]:
//! G. Bianchi, "Performance Analysis of the IEEE 802.11 Distributed
//! Coordination Function", IEEE JSAC 2000).
//!
//! For `n` saturated stations the per-station transmission probability
//! `τ` and conditional collision probability `p` solve the fixed point
//!
//! ```text
//! τ = 2(1−2p) / ((1−2p)(W+1) + pW(1−(2p)^m))
//! p = 1 − (1−τ)^(n−1)
//! ```
//!
//! with `W = CWmin+1` and `m` the number of window doublings. From
//! `(τ, p)` the model yields saturation throughput, the per-station
//! fair share (the paper's achievable throughput `B` for a saturated
//! contender), and the mean MAC service (access) time.

use csmaprobe_desim::rng::{derive_seed, SimRng};
use csmaprobe_phy::Phy;

/// Solved Bianchi fixed point plus derived channel quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BianchiModel {
    /// Number of saturated stations.
    pub n: usize,
    /// Per-slot transmission probability of one station.
    pub tau: f64,
    /// Conditional collision probability seen by a transmitting station.
    pub p: f64,
    /// Aggregate saturation throughput, bits/s of payload.
    pub throughput_bps: f64,
    /// Per-station fair share, bits/s.
    pub fair_share_bps: f64,
    /// Mean duration of a (virtual) backoff slot, seconds.
    pub mean_slot_s: f64,
    /// Mean MAC service time of one frame (head-of-queue to ACK),
    /// seconds — the analytic steady-state `E[μ]` for saturation.
    pub mean_access_delay_s: f64,
}

impl BianchiModel {
    /// Solve the model for `n` saturated stations sending fixed
    /// `payload_bytes` frames over `phy`.
    ///
    /// Panics if `n == 0`.
    pub fn solve(phy: &Phy, n: usize, payload_bytes: u32) -> Self {
        assert!(n >= 1, "need at least one station");
        let w = phy.cw_min as f64 + 1.0;
        // Number of doublings until CWmax.
        let m = ((phy.cw_max as f64 + 1.0) / w).log2().round().max(0.0);

        // Fixed-point iteration with damping; converges in tens of
        // iterations for all practical (W, m, n).
        let mut tau = 2.0 / (w + 1.0);
        for _ in 0..10_000 {
            let p_iter = 1.0 - (1.0 - tau).powi(n as i32 - 1);
            let denom =
                (1.0 - 2.0 * p_iter) * (w + 1.0) + p_iter * w * (1.0 - (2.0 * p_iter).powf(m));
            let tau_next = if denom.abs() < 1e-30 {
                tau
            } else {
                2.0 * (1.0 - 2.0 * p_iter) / denom
            };
            let next = 0.5 * tau + 0.5 * tau_next.clamp(1e-9, 1.0);
            if (next - tau).abs() < 1e-14 {
                tau = next;
                break;
            }
            tau = next;
        }
        let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);

        // Slot-type probabilities.
        let p_tr = 1.0 - (1.0 - tau).powi(n as i32); // some transmission
        let p_s = if p_tr > 0.0 {
            n as f64 * tau * (1.0 - tau).powi(n as i32 - 1) / p_tr
        } else {
            0.0
        };

        let sigma = phy.slot.as_secs_f64();
        let t_s = phy.difs().as_secs_f64() + phy.success_exchange(payload_bytes).as_secs_f64();
        let t_c = phy.difs().as_secs_f64()
            + phy.data_airtime(payload_bytes).as_secs_f64()
            + phy.sifs.as_secs_f64()
            + phy.ack_airtime().as_secs_f64();

        let mean_slot = (1.0 - p_tr) * sigma + p_tr * p_s * t_s + p_tr * (1.0 - p_s) * t_c;
        let payload_bits = payload_bytes as f64 * 8.0;
        let throughput = p_tr * p_s * payload_bits / mean_slot;

        // Mean service time: in saturation every station is always
        // serving a head frame and delivers exactly its fair share, so
        // by the renewal-reward theorem
        // E[μ] = payload_bits / fair_share. (Losses at the retry limit
        // are negligible for the regimes this model is used in.)
        let fair = throughput / n as f64;
        let mean_service = payload_bits / fair;

        BianchiModel {
            n,
            tau,
            p,
            throughput_bps: throughput,
            fair_share_bps: fair,
            mean_slot_s: mean_slot,
            mean_access_delay_s: mean_service,
        }
    }

    /// Draw one analytic access delay `μ` (head-of-queue to ACK-end,
    /// seconds) from the solved Bianchi chain — the **analytic tier's**
    /// per-packet distribution, replacing a full simulation for
    /// saturated symmetric cells.
    ///
    /// The delay of a frame is composed attempt by attempt, exactly as
    /// the tagged station experiences the channel:
    ///
    /// * at backoff stage `k` draw a counter `b ~ U[0, CW_k]`
    ///   (`CW_k = Phy::cw_at_stage(k)`, the simulator's window
    ///   schedule);
    /// * each of the `b` counted slots is idle (`σ`) with probability
    ///   `1 − p`; otherwise it is occupied by another station's success
    ///   (`T_s`) or by a collision among the others (`T_c`);
    /// * the attempt itself succeeds with probability `1 − p`
    ///   (adding `T_s`, done) or collides (adding `T_c`, next stage);
    /// * a frame exceeding the retry limit is dropped and its delay
    ///   discarded by redrawing, matching the simulators' convention of
    ///   excluding dropped frames from delay distributions.
    ///
    /// The decomposition ignores the sub-slot position of the tagged
    /// station inside a busy slot and the post-drop window reset, which
    /// is what bounds its accuracy; `crates/mac/tests/bianchi_oracle.rs`
    /// pins the resulting mean to the saturated event simulation within
    /// a documented 5 % band.
    pub fn sample_access_delay(&self, phy: &Phy, payload_bytes: u32, rng: &mut SimRng) -> f64 {
        let sigma = phy.slot.as_secs_f64();
        let t_s = phy.difs().as_secs_f64() + phy.success_exchange(payload_bytes).as_secs_f64();
        let t_c = phy.difs().as_secs_f64()
            + phy.data_airtime(payload_bytes).as_secs_f64()
            + phy.sifs.as_secs_f64()
            + phy.ack_airtime().as_secs_f64();
        // P(a busy observed slot is a success of one of the other n−1
        // stations rather than a collision among them).
        let q_s = if self.n >= 2 && self.p > 0.0 {
            let n1 = (self.n - 1) as f64;
            n1 * self.tau * (1.0 - self.tau).powi(self.n as i32 - 2) / self.p
        } else {
            0.0
        };
        'frame: loop {
            let mut delay = 0.0;
            for stage in 0..=phy.retry_limit {
                let cw = phy.cw_at_stage(stage) as u64;
                let b = rng.range_inclusive(0, cw);
                for _ in 0..b {
                    if rng.f64() < self.p {
                        delay += if rng.f64() < q_s { t_s } else { t_c };
                    } else {
                        delay += sigma;
                    }
                }
                if rng.f64() < self.p {
                    delay += t_c; // collided attempt, escalate
                } else {
                    delay += t_s;
                    return delay;
                }
            }
            // Retry limit exceeded: the frame is dropped; dropped frames
            // carry no access-delay sample, so draw a fresh frame.
            continue 'frame;
        }
    }

    /// `count` analytic access delays drawn deterministically from
    /// `seed` (derivation index 1, mirroring the first simulated
    /// station's RNG stream derivation).
    pub fn access_delays(
        &self,
        phy: &Phy,
        payload_bytes: u32,
        count: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = SimRng::new(derive_seed(seed, 1));
        (0..count)
            .map(|_| self.sample_access_delay(phy, payload_bytes, &mut rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmaprobe_phy::Phy;

    fn phy() -> Phy {
        Phy::dsss_11mbps()
    }

    #[test]
    fn single_station_never_collides() {
        let m = BianchiModel::solve(&phy(), 1, 1500);
        assert!(m.p.abs() < 1e-12);
        // τ = 2/(W+1) for p=0.
        assert!((m.tau - 2.0 / 33.0).abs() < 1e-9, "{}", m.tau);
        // Throughput close to the stand-alone cycle capacity.
        let analytic = 1500.0 * 8.0
            / (phy().difs().as_secs_f64()
                + 15.5 * phy().slot.as_secs_f64()
                + phy().success_exchange(1500).as_secs_f64());
        assert!(
            (m.throughput_bps - analytic).abs() / analytic < 0.01,
            "{} vs {analytic}",
            m.throughput_bps
        );
    }

    #[test]
    fn two_stations_collision_probability() {
        let m = BianchiModel::solve(&phy(), 2, 1500);
        // Known result for W=32, m=5, n=2: p ≈ 0.06, tau ≈ 0.06.
        assert!((0.04..0.09).contains(&m.p), "p = {}", m.p);
        assert!((0.04..0.09).contains(&m.tau), "tau = {}", m.tau);
        // Fair share is half the aggregate.
        assert!((m.fair_share_bps * 2.0 - m.throughput_bps).abs() < 1.0);
    }

    #[test]
    fn collision_probability_grows_with_n() {
        // p grows monotonically with contention. Aggregate throughput
        // *rises* slightly from n=1 to n=2 (less idle backoff wasted),
        // then decays as collisions dominate.
        let mut prev_p = 0.0;
        let mut prev_tput = f64::INFINITY;
        for n in [2, 5, 10, 20] {
            let m = BianchiModel::solve(&phy(), n, 1500);
            assert!(m.p >= prev_p, "p not monotone at n={n}");
            prev_p = m.p;
            assert!(
                m.throughput_bps < prev_tput,
                "throughput should decay with contention beyond n=2"
            );
            prev_tput = m.throughput_bps;
        }
        let one = BianchiModel::solve(&phy(), 1, 1500);
        let two = BianchiModel::solve(&phy(), 2, 1500);
        assert!(two.throughput_bps > one.throughput_bps);
    }

    #[test]
    fn mean_access_delay_consistent_with_fair_share() {
        // In saturation a station completes one frame per mean service
        // time, so fair_share ≈ payload_bits / mean_access_delay.
        for n in [2usize, 4, 8] {
            let m = BianchiModel::solve(&phy(), n, 1500);
            let implied = 1500.0 * 8.0 / m.mean_access_delay_s;
            let rel = (implied - m.fair_share_bps).abs() / m.fair_share_bps;
            assert!(
                rel < 1e-9,
                "n={n}: implied {implied:.0} vs fair {:.0}",
                m.fair_share_bps
            );
        }
    }

    #[test]
    fn sampler_mean_matches_renewal_reward_mean() {
        // The per-frame chain sampler and the renewal-reward E[μ]
        // derivation are independent routes to the same quantity; they
        // must agree closely (the sampler resolves the distribution the
        // scalar summarises).
        for n in [1usize, 2, 4] {
            let m = BianchiModel::solve(&phy(), n, 1500);
            let delays = m.access_delays(&phy(), 1500, 20_000, 0xB1A);
            let mean = delays.iter().sum::<f64>() / delays.len() as f64;
            let rel = (mean - m.mean_access_delay_s).abs() / m.mean_access_delay_s;
            assert!(
                rel < 0.05,
                "n={n}: sampled {mean:.6} vs analytic {:.6} (rel {rel:.3})",
                m.mean_access_delay_s
            );
        }
    }

    #[test]
    fn sampler_is_deterministic_and_positive() {
        let m = BianchiModel::solve(&phy(), 2, 1500);
        let a = m.access_delays(&phy(), 1500, 500, 7);
        let b = m.access_delays(&phy(), 1500, 500, 7);
        let c = m.access_delays(&phy(), 1500, 500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn throughput_in_expected_band_for_11b() {
        // 2 saturated stations at 11 Mb/s, 1500 B: aggregate ~6.3-6.7
        // Mb/s (slightly above the lone-station 6.2 because two
        // contenders waste less idle backoff, and p is still small).
        let m = BianchiModel::solve(&phy(), 2, 1500);
        assert!(
            (6.1e6..6.8e6).contains(&m.throughput_bps),
            "{}",
            m.throughput_bps
        );
    }
}
