//! MAC behaviour options: ablation switches and extensions beyond the
//! paper's baseline configuration.
//!
//! The paper's setup (NS2 defaults, no RTS/CTS, no channel errors) is
//! [`MacOptions::default`]. The other settings exist for ablations and
//! extension experiments:
//!
//! * `immediate_access: false` — always draw a backoff, even when a
//!   packet arrives to an idle medium. Quantifies how much of the
//!   first-packet acceleration (§4) is due to the DCF immediate-access
//!   rule vs. the queue/contention build-up.
//! * `frame_error_rate` — i.i.d. per-attempt corruption of data frames
//!   (no ACK returned ⇒ BEB retry). The paper explicitly excludes
//!   channel impairments; this knob lets users study how losses distort
//!   dispersion measurements anyway.
//! * `rts_cts_threshold` — frames with payloads strictly larger than
//!   the threshold are protected by an RTS/CTS handshake (collisions
//!   then cost only the RTS airtime).

/// Behavioural switches of the DCF simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacOptions {
    /// Transmit immediately after DIFS when the medium is idle at
    /// arrival (802.11 / NS2 behaviour). `false` forces a backoff draw
    /// for every frame.
    pub immediate_access: bool,
    /// Probability that a data-frame attempt is corrupted (receiver
    /// returns no ACK). 0.0 = the paper's error-free channel.
    pub frame_error_rate: f64,
    /// Use RTS/CTS for payloads strictly larger than this many bytes
    /// (`None` = never, the paper's setting).
    pub rts_cts_threshold: Option<u32>,
}

impl Default for MacOptions {
    fn default() -> Self {
        MacOptions {
            immediate_access: true,
            frame_error_rate: 0.0,
            rts_cts_threshold: None,
        }
    }
}

impl MacOptions {
    /// The paper's configuration (alias of `default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Disable the immediate-access rule (ablation).
    pub fn without_immediate_access(mut self) -> Self {
        self.immediate_access = false;
        self
    }

    /// Set a per-attempt frame error rate.
    pub fn with_frame_error_rate(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "error rate {p} out of [0,1)");
        self.frame_error_rate = p;
        self
    }

    /// Protect payloads above `bytes` with RTS/CTS.
    pub fn with_rts_cts(mut self, bytes: u32) -> Self {
        self.rts_cts_threshold = Some(bytes);
        self
    }

    /// Whether a frame of `payload_bytes` uses the RTS/CTS handshake.
    pub fn uses_rts(&self, payload_bytes: u32) -> bool {
        self.rts_cts_threshold
            .map(|t| payload_bytes > t)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_config() {
        let o = MacOptions::default();
        assert!(o.immediate_access);
        assert_eq!(o.frame_error_rate, 0.0);
        assert_eq!(o.rts_cts_threshold, None);
        assert_eq!(o, MacOptions::paper());
    }

    #[test]
    fn builders_compose() {
        let o = MacOptions::default()
            .without_immediate_access()
            .with_frame_error_rate(0.1)
            .with_rts_cts(500);
        assert!(!o.immediate_access);
        assert_eq!(o.frame_error_rate, 0.1);
        assert!(o.uses_rts(501));
        assert!(!o.uses_rts(500));
        assert!(!o.uses_rts(40));
    }

    #[test]
    #[should_panic(expected = "out of [0,1)")]
    fn error_rate_validated() {
        MacOptions::default().with_frame_error_rate(1.5);
    }
}
