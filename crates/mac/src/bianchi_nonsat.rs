//! Finite-offered-load (non-saturated) Bianchi-style fixed point —
//! the analytic tier's coverage of the rate-response **knee**.
//!
//! [`crate::bianchi::BianchiModel`] assumes every station always has a
//! frame queued; the paper's actual setup (a probe flow ramped across
//! the available bandwidth against cross-traffic of fixed offered
//! rate) lives almost entirely *outside* that assumption. Following
//! the non-saturated extensions of Bianchi's chain (Kai & Zhang,
//! "Throughput Analysis of CSMA Wireless Networks with Finite
//! Offered-load"; Malone/Duffy/Leith's heterogeneous-load 802.11
//! model), each station `i` couples the saturated transmission
//! probability to an M/G/1-style queue-occupancy probability `ρ_i`:
//!
//! ```text
//! p_i   = 1 − Π_{j≠i} (1 − τ_j)                 (collision seen by i)
//! E[S_i] = mean MAC service time of one frame at (p_i, slot mix)
//! ρ_i   = min(1, λ_i · E[S_i])                  (queue occupancy)
//! τ_i   = ρ_i · τ_sat(p_i)                      (transmit only when busy)
//! ```
//!
//! with `τ_sat` the Bianchi saturation curve and `λ_i` the station's
//! frame arrival rate. The system is solved by damped fixed-point
//! iteration with an explicit residual certificate: [`NonSatModel::solve`]
//! either converges (residual below [`NonSatModel::TOLERANCE`] within
//! [`NonSatModel::MAX_ITER`] steps) or returns
//! [`NonSatError::NotConverged`] — it never spins, and the engine
//! router treats a non-converged cell as *uncovered* (simulation keeps
//! it). Heterogeneous loads are first-class: the probe station and the
//! cross-traffic stations carry independent rates, which is exactly
//! the paper's probe-vs-contender asymmetry, and the model reproduces
//! the cross-traffic *degradation* past the knee (a saturating probe
//! slows everyone's service, pushing lightly-loaded contenders over
//! their own knee — the decline Fig 1's event data shows).
//!
//! The mean service time is derived from the same attempt-by-attempt
//! backoff chain the saturated sampler walks (counted slots idle with
//! probability `1 − p_i`, otherwise occupied by another station's
//! success or a collision; collided attempts escalate the window),
//! combined with an **empty-queue arrival mixture** matching the event
//! MAC's documented access rules: a frame arriving to an empty queue on
//! an idle medium transmits immediately after DIFS (no backoff); one
//! arriving mid-busy-period first waits out the residual busy time;
//! only frames that found the queue occupied (probability `ρ_i`) walk
//! the full backoff chain from the head-of-queue instant. Without the
//! mixture the model overcharges light stations a full initial backoff
//! per frame and overshoots sub-knee delays by ~15 %. The closed-form
//! mean, the per-frame chain sampler
//! ([`NonSatModel::sample_access_delay`], same contract as
//! [`crate::bianchi::BianchiModel::sample_access_delay`]) and the
//! simulators all describe one distribution. Accuracy is pinned against
//! the event core in `crates/mac/tests/bianchi_nonsat_oracle.rs` (±5 %
//! on throughput and mean access delay across the certified regime
//! matrix).

use csmaprobe_desim::rng::{derive_seed, SimRng};
use csmaprobe_phy::Phy;

/// One station's offered load, as the fixed point sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonSatStation {
    /// Offered (long-run mean) payload rate, bits/s.
    pub rate_bps: f64,
    /// Payload size per frame, bytes.
    pub bytes: u32,
}

/// Per-station solution of the finite-load fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonSatStationSolution {
    /// Per-slot transmission probability (already scaled by `ρ`).
    pub tau: f64,
    /// Conditional collision probability seen by this station.
    pub p: f64,
    /// Queue-occupancy probability `min(1, λ·E[S])`.
    pub rho: f64,
    /// Delivered payload rate, bits/s: `min(λ, 1/E[S]) · L`.
    pub throughput_bps: f64,
    /// Mean MAC access delay of one frame (head-of-queue to ACK end),
    /// seconds — `E[S]`, conditioned on delivery within the retry
    /// limit (the simulators' convention for delay distributions).
    pub mean_access_delay_s: f64,
    /// Whether the station's queue is saturated (`ρ` hit 1).
    pub saturated: bool,
}

/// Why [`NonSatModel::solve`] refused to certify a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NonSatError {
    /// The damped iteration did not reach the residual bound within
    /// [`NonSatModel::MAX_ITER`] steps; the final residual is reported
    /// so callers can log how far off the certificate was.
    NotConverged {
        /// Iterations performed (always `MAX_ITER` here).
        iterations: usize,
        /// Final fixed-point residual `max_i |τ_target_i − τ_i|`.
        residual: f64,
    },
    /// A station list the model is not defined on (empty, or a
    /// non-positive rate/size).
    BadInput,
}

impl std::fmt::Display for NonSatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonSatError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "fixed point not converged after {iterations} iterations (residual {residual:e})"
            ),
            NonSatError::BadInput => write!(f, "stations must be non-empty with positive loads"),
        }
    }
}

/// Per-station channel timings, fixed across iterations.
struct Timing {
    /// Arrival rate, frames/s.
    lambda: f64,
    /// Payload bits per frame.
    bits: f64,
    /// Own successful-exchange duration (DIFS + data + SIFS + ACK), s.
    t_s: f64,
    /// Own collided-attempt duration, s.
    t_c: f64,
}

/// Solved finite-load fixed point plus its convergence certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct NonSatModel {
    /// The offered loads the model was solved for, in input order.
    pub stations: Vec<NonSatStation>,
    /// Per-station solution, same order.
    pub per_station: Vec<NonSatStationSolution>,
    /// Aggregate delivered payload rate, bits/s.
    pub throughput_bps: f64,
    /// Iterations the damped fixed point took.
    pub iterations: usize,
    /// Final residual `max_i |τ_target_i − τ_i|` — the convergence
    /// certificate, strictly below [`NonSatModel::TOLERANCE`].
    pub residual: f64,
}

impl NonSatModel {
    /// Hard iteration cap: the solver terminates (converged or
    /// [`NonSatError::NotConverged`]) within this many damped steps.
    pub const MAX_ITER: usize = 10_000;
    /// Residual bound certifying convergence.
    pub const TOLERANCE: f64 = 1e-11;

    /// Solve the coupled `(τ_i, ρ_i)` fixed point for the given
    /// offered loads over `phy`. Deterministic: pure arithmetic on the
    /// inputs, no RNG — safe inside routing predicates.
    pub fn solve(phy: &Phy, stations: &[NonSatStation]) -> Result<NonSatModel, NonSatError> {
        if stations.is_empty()
            || stations
                .iter()
                .any(|s| s.rate_bps <= 0.0 || s.bytes == 0 || !s.rate_bps.is_finite())
        {
            return Err(NonSatError::BadInput);
        }
        let n = stations.len();
        let w = phy.cw_min as f64 + 1.0;
        let m = ((phy.cw_max as f64 + 1.0) / w).log2().round().max(0.0);
        let sigma = phy.slot.as_secs_f64();

        let timing: Vec<Timing> = stations
            .iter()
            .map(|s| Timing {
                lambda: s.rate_bps / (s.bytes as f64 * 8.0),
                bits: s.bytes as f64 * 8.0,
                t_s: phy.difs().as_secs_f64() + phy.success_exchange(s.bytes).as_secs_f64(),
                t_c: phy.difs().as_secs_f64()
                    + phy.data_airtime(s.bytes).as_secs_f64()
                    + phy.sifs.as_secs_f64()
                    + phy.ack_airtime().as_secs_f64(),
            })
            .collect();

        // Mean backoff counter per stage, and the reach probabilities,
        // are re-derived per iteration from p_i; the stage windows are
        // fixed by the PHY.
        let stage_cw: Vec<f64> = (0..=phy.retry_limit)
            .map(|k| phy.cw_at_stage(k) as f64 / 2.0)
            .collect();

        let mut tau = vec![0.0f64; n];
        let mut sol = vec![
            NonSatStationSolution {
                tau: 0.0,
                p: 0.0,
                rho: 0.0,
                throughput_bps: 0.0,
                mean_access_delay_s: 0.0,
                saturated: false,
            };
            n
        ];
        let mut iterations = 0usize;
        let mut residual = f64::INFINITY;

        // Per-station per-iteration chain quantities (pass 1).
        struct Chain {
            p: f64,
            c0: f64, // chain mean entered at stage 0
            c1: f64, // chain mean entered at stage 1 (post immediate-access collision)
        }

        // Per-iteration work buffers, allocated once: the solver sits on
        // the routing hot path (`engine::nonsat_certified` solves per
        // cell), where five fresh `Vec`s per iteration would dominate
        // the per-iteration flop count at small n.
        let mut next = vec![0.0f64; n];
        let mut chains: Vec<Chain> = Vec::with_capacity(n);
        let mut rho_prev: Vec<f64> = Vec::with_capacity(n);
        let mut rush: Vec<(f64, f64, f64)> = Vec::with_capacity(n);
        let mut x: Vec<f64> = Vec::with_capacity(n);

        for iter in 0..Self::MAX_ITER {
            iterations = iter + 1;
            residual = 0.0;
            // Pass 1: collision probabilities and backoff-chain means
            // for every station from the current τ vector.
            chains.clear();
            chains.extend((0..n).map(|i| {
                // Collision probability and the busy-slot mix seen by i.
                let mut prod_others = 1.0;
                for (j, &t) in tau.iter().enumerate() {
                    if j != i {
                        prod_others *= 1.0 - t;
                    }
                }
                let p_i = (1.0 - prod_others).clamp(0.0, 1.0);
                // P(exactly one other station transmits) and the mean
                // success duration of that station's exchange.
                let mut single = 0.0;
                let mut single_ts = 0.0;
                let mut coll_tc: f64 = 0.0;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let others = if tau[j] < 1.0 {
                        prod_others / (1.0 - tau[j])
                    } else {
                        // τ_j = 1 collapses the product; recompute.
                        let mut q = 1.0;
                        for (k, &t) in tau.iter().enumerate() {
                            if k != i && k != j {
                                q *= 1.0 - t;
                            }
                        }
                        q
                    };
                    let ps_j = tau[j] * others;
                    single += ps_j;
                    single_ts += ps_j * timing[j].t_s;
                    coll_tc = coll_tc.max(timing[j].t_c);
                }
                let q_s = if p_i > 0.0 {
                    (single / p_i).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let t_s_busy = if single > 0.0 {
                    single_ts / single
                } else {
                    timing[i].t_s
                };
                let t_c_busy = if coll_tc > 0.0 {
                    coll_tc
                } else {
                    timing[i].t_c
                };

                // Mean counted-slot duration; chain means entered at
                // stage 0 (queued frame) and stage 1 (a frame whose
                // immediate access collided and now backs off).
                let slot = (1.0 - p_i) * sigma + p_i * (q_s * t_s_busy + (1.0 - q_s) * t_c_busy);
                let c0 = chain_mean(&stage_cw, 0, p_i, slot, timing[i].t_c, timing[i].t_s);
                let c1 = chain_mean(&stage_cw, 1, p_i, slot, timing[i].t_c, timing[i].t_s);
                Chain { p: p_i, c0, c1 }
            }));

            // Queue occupancies from the previous iterate weight the
            // post-busy rush (zero on the first pass).
            rho_prev.clear();
            rho_prev.extend(sol.iter().map(|s| s.rho));

            // Post-busy rush context per station: a chain that starts
            // right after a busy period (a queued frame after our own
            // exchange, or an arrival that waited out a residual) faces
            // rivals whose frames were deferred by that very busy
            // period — conditional contention the long-run per-slot τ
            // cannot express. Each unsaturated rival j is present with
            // probability ≈ min(1, λ_j·T_window), wins the first
            // contention with probability β ≈ ½, and its winning
            // exchange defers further arrivals (geometric compounding).
            // Saturated rivals are already fully charged by the
            // mean-field p (τ_sat per slot), so the rush counts only
            // the (1−ρ_j)-weighted excess.
            const BETA: f64 = 0.5;
            rush.clear();
            rush.extend((0..n).map(|i| {
                let mut rush_rate = 0.0;
                let mut rush_ts = 0.0;
                for (j, t) in timing.iter().enumerate() {
                    if j != i {
                        rush_rate += t.lambda;
                        rush_ts += t.lambda * t.t_s;
                    }
                }
                let t_rush = if rush_rate > 0.0 {
                    rush_ts / rush_rate
                } else {
                    0.0
                };
                let mut compound = 0.0;
                let mut present_q = 0.0;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let excess = (1.0 - rho_prev[j]).clamp(0.0, 1.0);
                    compound += excess * BETA * (timing[j].lambda * t_rush).min(1.0);
                    present_q += excess * BETA * (timing[j].lambda * timing[i].t_s).min(1.0);
                }
                let compound = compound.min(0.9);
                (t_rush, compound, present_q / (1.0 - compound) * t_rush)
            }));

            // Delivered frame rates bound the channel-busy view: an
            // unsaturated station delivers its arrivals, a saturated
            // one delivers at its queued-service rate (chain + rush).
            x.clear();
            x.extend((0..n).map(|j| timing[j].lambda.min(1.0 / (chains[j].c0 + rush[j].2))));

            // Mean duration of one global channel slot (idle / success
            // by station j / collision), from the current τ vector —
            // the time base of the attempt-rate balance below.
            let mut p_idle = 1.0;
            for &t in &tau {
                p_idle *= 1.0 - t;
            }
            let mut p_succ = 0.0;
            let mut succ_ts = 0.0;
            let mut t_c_glob: f64 = 0.0;
            for j in 0..n {
                let others = if tau[j] < 1.0 {
                    p_idle / (1.0 - tau[j])
                } else {
                    let mut q = 1.0;
                    for (k, &t) in tau.iter().enumerate() {
                        if k != j {
                            q *= 1.0 - t;
                        }
                    }
                    q
                };
                let ps_j = tau[j] * others;
                p_succ += ps_j;
                succ_ts += ps_j * timing[j].t_s;
                t_c_glob = t_c_glob.max(timing[j].t_c);
            }
            let p_coll = (1.0 - p_idle - p_succ).max(0.0);
            let slot_global = p_idle * sigma + succ_ts + p_coll * t_c_glob;

            // Pass 2: empty-queue arrival mixture, post-busy rush,
            // queue occupancy and the τ update.
            for i in 0..n {
                let p_i = chains[i].p;
                let (t_rush, compound, rush_q) = rush[i];
                // Wall-clock fraction the channel is busy with OTHER
                // stations' successful exchanges, and the mean residual
                // of the busy period an arrival lands in.
                let mut busy = 0.0;
                let mut busy_sq = 0.0;
                for j in 0..n {
                    if j != i {
                        busy += x[j] * timing[j].t_s;
                        busy_sq += x[j] * timing[j].t_s * timing[j].t_s;
                    }
                }
                let u = busy.clamp(0.0, 1.0);
                let resid_busy = if busy > 0.0 {
                    busy_sq / (2.0 * busy)
                } else {
                    0.0
                };

                // Rush faced after waiting out a residual busy period:
                // same geometry as `rush_q` with the length-biased busy
                // duration as the deferral window.
                let t_busy_bar = if busy > 0.0 { busy_sq / busy } else { 0.0 };
                let mut present_b = 0.0;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let excess = (1.0 - rho_prev[j]).clamp(0.0, 1.0);
                    present_b += excess * BETA * (timing[j].lambda * t_busy_bar).min(1.0);
                }
                let rush_b = present_b / (1.0 - compound) * t_rush;

                // Delay of a frame that found the queue occupied: the
                // full backoff chain plus the rush its predecessor's
                // exchange provoked.
                let queued = chains[i].c0 + rush_q;
                // Delay of a frame that arrived to an empty queue:
                // idle medium → immediate access after DIFS (collides
                // with probability p and falls into the stage-1 chain);
                // busy medium → residual busy wait, then the chain
                // against the deferred rush.
                let empty = (1.0 - u)
                    * ((1.0 - p_i) * timing[i].t_s + p_i * (timing[i].t_c + chains[i].c1))
                    + u * (resid_busy + chains[i].c0 + rush_b);
                // E[S] = ρ·queued + (1−ρ)·empty with ρ = λ·E[S] solves
                // in closed form; a non-positive denominator or ρ ≥ 1
                // means the queue cannot drain: saturated.
                let denom = 1.0 - timing[i].lambda * (queued - empty);
                let (rho, service) = if timing[i].lambda * queued >= 1.0 || denom <= 0.0 {
                    (1.0, queued)
                } else {
                    let d = empty / denom;
                    let r = timing[i].lambda * d;
                    if r >= 1.0 {
                        (1.0, queued)
                    } else {
                        (r, d)
                    }
                };

                // Attempt-rate balance: an unsaturated station's
                // successful attempts per global slot equal its arrival
                // rate per slot, `τ(1−p) = λ·E[slot]` — throughput
                // conservation in the slotted view. A saturated station
                // attempts at Bianchi's `τ_sat(p)`, which also caps the
                // unsaturated rate at the knee.
                let tau_sat = saturated_tau(p_i, w, m);
                let tau_bal = timing[i].lambda * slot_global / (1.0 - p_i).max(1e-9);
                let target = if rho >= 1.0 {
                    tau_sat
                } else {
                    tau_bal.min(tau_sat)
                }
                .clamp(0.0, 1.0 - 1e-9);
                residual = residual.max((target - tau[i]).abs());
                next[i] = tau[i] + 0.5 * (target - tau[i]);

                sol[i] = NonSatStationSolution {
                    tau: next[i],
                    p: p_i,
                    rho,
                    throughput_bps: x[i] * timing[i].bits,
                    mean_access_delay_s: service,
                    saturated: rho >= 1.0,
                };
            }
            std::mem::swap(&mut tau, &mut next);
            if residual < Self::TOLERANCE {
                let throughput = sol.iter().map(|s| s.throughput_bps).sum();
                return Ok(NonSatModel {
                    stations: stations.to_vec(),
                    per_station: sol,
                    throughput_bps: throughput,
                    iterations,
                    residual,
                });
            }
        }
        Err(NonSatError::NotConverged {
            iterations,
            residual,
        })
    }

    /// Draw one access delay `μ` (head-of-queue to ACK end, seconds)
    /// for `station` from the solved model — the same attempt-by-attempt
    /// chain decomposition, draw layout and redraw-on-drop convention as
    /// [`crate::bianchi::BianchiModel::sample_access_delay`], extended
    /// with the empty-queue arrival mixture (immediate access / residual
    /// busy wait) the closed-form mean integrates over. Draw order per
    /// frame: queue-occupancy branch, then (empty queue) channel-state
    /// branch, then occupant choice + residual or the immediate-access
    /// collision branch, then the backoff chain.
    pub fn sample_access_delay(&self, phy: &Phy, station: usize, rng: &mut SimRng) -> f64 {
        let s = &self.per_station[station];
        let spec = &self.stations[station];
        let sigma = phy.slot.as_secs_f64();
        let t_s = phy.difs().as_secs_f64() + phy.success_exchange(spec.bytes).as_secs_f64();
        let t_c = phy.difs().as_secs_f64()
            + phy.data_airtime(spec.bytes).as_secs_f64()
            + phy.sifs.as_secs_f64()
            + phy.ack_airtime().as_secs_f64();
        // Busy-slot composition seen by this station, from the solved
        // τ vector (mirrors the solver's per-iteration derivation).
        let mut prod_others = 1.0;
        for (j, other) in self.per_station.iter().enumerate() {
            if j != station {
                prod_others *= 1.0 - other.tau;
            }
        }
        let mut single = 0.0;
        let mut single_ts = 0.0;
        for (j, other) in self.per_station.iter().enumerate() {
            if j == station {
                continue;
            }
            let others = if other.tau < 1.0 {
                prod_others / (1.0 - other.tau)
            } else {
                0.0
            };
            let ps_j = other.tau * others;
            single += ps_j;
            single_ts += ps_j
                * (phy.difs().as_secs_f64()
                    + phy.success_exchange(self.stations[j].bytes).as_secs_f64());
        }
        let q_s = if s.p > 0.0 {
            (single / s.p).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let t_s_busy = if single > 0.0 {
            single_ts / single
        } else {
            t_s
        };

        // Wall-clock busy view for the arrival mixture: other stations'
        // delivered exchanges (x_j = throughput_j / L_j, identical to
        // the solver's pass-2 view at the converged point).
        let mut busy_w: Vec<(f64, f64)> = Vec::with_capacity(self.per_station.len() - 1);
        let mut busy = 0.0;
        let mut busy_sq = 0.0;
        for (j, other) in self.per_station.iter().enumerate() {
            if j == station {
                continue;
            }
            let ts_j = phy.difs().as_secs_f64()
                + phy.success_exchange(self.stations[j].bytes).as_secs_f64();
            let share = other.throughput_bps / (self.stations[j].bytes as f64 * 8.0) * ts_j;
            busy_w.push((share, ts_j));
            busy += share;
            busy_sq += share * ts_j;
        }
        let u = busy.clamp(0.0, 1.0);

        // Post-busy rush parameters (mirrors the solver's pass-2
        // geometry): presence of deferred unsaturated rivals at a
        // post-busy chain start, with geometric compounding. The
        // deferral window is the own exchange `t_s` for a queued frame
        // and the length-biased busy duration for a busy-medium
        // arrival.
        const BETA: f64 = 0.5;
        let t_busy_bar = if busy > 0.0 { busy_sq / busy } else { 0.0 };
        let mut rush_rate = 0.0;
        let mut rush_ts = 0.0;
        for (j, spec_j) in self.stations.iter().enumerate() {
            if j != station {
                let lam_j = spec_j.rate_bps / (spec_j.bytes as f64 * 8.0);
                rush_rate += lam_j;
                rush_ts += lam_j
                    * (phy.difs().as_secs_f64() + phy.success_exchange(spec_j.bytes).as_secs_f64());
            }
        }
        let t_rush = if rush_rate > 0.0 {
            rush_ts / rush_rate
        } else {
            0.0
        };
        let mut compound = 0.0;
        let mut present_q = 0.0;
        let mut present_b = 0.0;
        for (j, other) in self.per_station.iter().enumerate() {
            if j == station {
                continue;
            }
            let lam_j = self.stations[j].rate_bps / (self.stations[j].bytes as f64 * 8.0);
            let excess = (1.0 - other.rho).clamp(0.0, 1.0) * BETA;
            compound += excess * (lam_j * t_rush).min(1.0);
            present_q += excess * (lam_j * t_s).min(1.0);
            present_b += excess * (lam_j * t_busy_bar).min(1.0);
        }
        let compound = compound.min(0.9);

        // The backoff chain entered at `entry`; dropped frames redraw
        // from the same entry stage (the conditional-on-delivery
        // convention the closed-form chain means use).
        let chain = |rng: &mut SimRng, entry: u32| -> f64 {
            'frame: loop {
                let mut delay = 0.0;
                for stage in entry..=phy.retry_limit {
                    let cw = phy.cw_at_stage(stage) as u64;
                    let b = rng.range_inclusive(0, cw);
                    for _ in 0..b {
                        if rng.f64() < s.p {
                            delay += if rng.f64() < q_s { t_s_busy } else { t_c };
                        } else {
                            delay += sigma;
                        }
                    }
                    if rng.f64() < s.p {
                        delay += t_c; // collided attempt, escalate
                    } else {
                        delay += t_s;
                        return delay;
                    }
                }
                // Dropped frames carry no access-delay sample: redraw.
                continue 'frame;
            }
        };

        // Geometric post-busy rush: a first deferred rival is present
        // with probability `r0`; each winning rival exchange defers
        // another with probability `compound`.
        let rush = |rng: &mut SimRng, r0: f64| -> f64 {
            let mut delay = 0.0;
            let mut q = r0;
            while rng.f64() < q {
                delay += t_rush;
                q = compound;
            }
            delay
        };

        if rng.f64() < s.rho {
            // Found the queue occupied: full chain from stage 0,
            // against the rivals deferred by the predecessor's exchange.
            return chain(rng, 0) + rush(rng, present_q);
        }
        if rng.f64() < u {
            // Empty queue, busy channel: residual of the occupant's
            // exchange (length-biased occupant, uniform residual), then
            // the chain against the rivals the busy period deferred.
            let mut pick = rng.f64() * busy;
            let mut occupant_ts = busy_w.last().map_or(t_s, |&(_, ts)| ts);
            for &(share, ts_j) in &busy_w {
                if pick < share {
                    occupant_ts = ts_j;
                    break;
                }
                pick -= share;
            }
            return rng.f64() * occupant_ts + chain(rng, 0) + rush(rng, present_b);
        }
        // Empty queue, idle channel: immediate access after DIFS.
        if rng.f64() < s.p {
            t_c + chain(rng, 1)
        } else {
            t_s
        }
    }

    /// Whether the solved model's **delay** figures for `station` are
    /// within the measured ±5 % oracle tolerance.
    ///
    /// Throughput is certified whenever the solver converges (measured
    /// ≤ ~4 % everywhere); mean access delay is not. Between roughly
    /// 70 % and 100 % aggregate utilisation the event dynamics are
    /// dominated by queue-buildup excursions — the very transient the
    /// paper studies (its Figs 4–6 "transitory periods") — which a
    /// mean-field fixed point structurally underestimates (measured
    /// −13…−49 % at the knee). The measured boundary: a *saturated*
    /// station's delay is fine (its chain never waits on its own
    /// arrivals; ≤ 4 % across the above-knee row), and unsaturated
    /// stations are fine while the summed occupancy of all unsaturated
    /// stations stays below ~0.8 (≤ 5 % across the light/mid rows;
    /// first failures appear at Σρ ≈ 1.0). See EXPERIMENTS.md for the
    /// full measured ladder.
    pub fn delay_certified(&self, station: usize) -> bool {
        if self.per_station[station].saturated {
            return true;
        }
        let rho_unsat: f64 = self
            .per_station
            .iter()
            .filter(|s| !s.saturated)
            .map(|s| s.rho)
            .sum();
        rho_unsat <= 0.8
    }

    /// `count` access delays for `station`, drawn deterministically
    /// from `seed` (derivation index 1 — the same stream derivation as
    /// [`crate::bianchi::BianchiModel::access_delays`]).
    pub fn access_delays(&self, phy: &Phy, station: usize, count: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::new(derive_seed(seed, 1));
        (0..count)
            .map(|_| self.sample_access_delay(phy, station, &mut rng))
            .collect()
    }
}

/// Conditional mean of the backoff chain entered at `entry` (success
/// at stage `k ≥ entry` with probability `p^(k−entry)·(1−p)`,
/// conditioned on delivery within the retry limit): mean counted
/// backoff slots times the mean slot duration, plus collided-attempt
/// airtimes, plus the final successful exchange.
fn chain_mean(stage_cw: &[f64], entry: usize, p: f64, slot: f64, t_c: f64, t_s: f64) -> f64 {
    let mut cum_backoff = 0.0; // Σ_{entry<=j<=k} E[b_j]
    let mut s_backoff = 0.0; // Σ_k p^(k−entry)(1−p) Σ_j E[b_j]
    let mut s_colls = 0.0; // Σ_k p^(k−entry)(1−p) (k−entry)
    let mut p_pow = 1.0;
    for (k, &eb) in stage_cw.iter().enumerate().skip(entry) {
        cum_backoff += eb;
        let wgt = p_pow * (1.0 - p);
        s_backoff += wgt * cum_backoff;
        s_colls += wgt * (k - entry) as f64;
        p_pow *= p;
    }
    let p_deliver = (1.0 - p_pow).max(1e-12);
    (s_backoff * slot + s_colls * t_c) / p_deliver + t_s
}

/// Bianchi's saturation curve `τ_sat(p)` for window `W` and `m`
/// doublings — what a station's transmission probability would be if
/// its queue never emptied.
fn saturated_tau(p: f64, w: f64, m: f64) -> f64 {
    let denom = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powf(m));
    if denom.abs() < 1e-30 {
        2.0 / (w + 1.0)
    } else {
        (2.0 * (1.0 - 2.0 * p) / denom).clamp(1e-9, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bianchi::BianchiModel;
    use csmaprobe_phy::Phy;

    fn phy() -> Phy {
        Phy::dsss_11mbps()
    }

    fn sym(n: usize, rate_bps: f64) -> Vec<NonSatStation> {
        vec![
            NonSatStation {
                rate_bps,
                bytes: 1500,
            };
            n
        ]
    }

    #[test]
    fn light_load_delivers_offered_rate() {
        // Two stations at 1 Mb/s each on a ~6.2 Mb/s channel: both far
        // from their knees, so delivered == offered and ρ ≪ 1.
        let m = NonSatModel::solve(&phy(), &sym(2, 1e6)).unwrap();
        for s in &m.per_station {
            assert!(!s.saturated);
            assert!(s.rho < 0.6, "rho {}", s.rho);
            assert!((s.throughput_bps - 1e6).abs() < 1.0, "{}", s.throughput_bps);
        }
        assert!(m.residual < NonSatModel::TOLERANCE);
    }

    #[test]
    fn saturated_symmetric_recovers_bianchi() {
        // All stations offered far above capacity: ρ = 1 everywhere and
        // the fixed point must collapse to Bianchi's saturated (τ, p).
        for n in [2usize, 5, 10] {
            let sat = BianchiModel::solve(&phy(), n, 1500);
            let m = NonSatModel::solve(&phy(), &sym(n, 20e6)).unwrap();
            for s in &m.per_station {
                assert!(s.saturated, "n={n}");
                assert!(
                    (s.tau - sat.tau).abs() < 1e-6,
                    "n={n}: {} vs {}",
                    s.tau,
                    sat.tau
                );
                assert!((s.p - sat.p).abs() < 1e-6, "n={n}");
            }
            // Aggregate throughput within the analytic family's own
            // spread (chain-mean vs slot-mean derivations differ by a
            // few %; both are pinned to the event core at ±5 %).
            let rel = (m.throughput_bps - sat.throughput_bps).abs() / sat.throughput_bps;
            assert!(
                rel < 0.05,
                "n={n}: {} vs {}",
                m.throughput_bps,
                sat.throughput_bps
            );
        }
    }

    #[test]
    fn heterogeneous_knee_degrades_the_loaded_station() {
        // The Fig 1 mechanism: a light probe leaves the 4.5 Mb/s
        // contender its full rate; a saturating probe pushes the
        // contender over its knee and both settle near the fair share.
        let light = NonSatModel::solve(
            &phy(),
            &[
                NonSatStation {
                    rate_bps: 1e6,
                    bytes: 1500,
                },
                NonSatStation {
                    rate_bps: 4.5e6,
                    bytes: 1500,
                },
            ],
        )
        .unwrap();
        assert!((light.per_station[0].throughput_bps - 1e6).abs() < 1.0);
        assert!(
            light.per_station[1].throughput_bps > 4.2e6,
            "contender degraded too early: {}",
            light.per_station[1].throughput_bps
        );

        let heavy = NonSatModel::solve(
            &phy(),
            &[
                NonSatStation {
                    rate_bps: 9e6,
                    bytes: 1500,
                },
                NonSatStation {
                    rate_bps: 4.5e6,
                    bytes: 1500,
                },
            ],
        )
        .unwrap();
        assert!(heavy.per_station[0].saturated);
        assert!(
            heavy.per_station[1].throughput_bps < 0.9 * 4.5e6,
            "contender must degrade past the knee: {}",
            heavy.per_station[1].throughput_bps
        );
        // Fair-share region: both within the Bianchi n=2 neighbourhood.
        let fair = BianchiModel::solve(&phy(), 2, 1500).fair_share_bps;
        for s in &heavy.per_station {
            assert!(
                (s.throughput_bps - fair).abs() / fair < 0.15,
                "{} vs fair {fair}",
                s.throughput_bps
            );
        }
    }

    #[test]
    fn mean_delay_grows_with_contention() {
        let lone = NonSatModel::solve(&phy(), &sym(1, 1e6)).unwrap();
        let duo = NonSatModel::solve(&phy(), &sym(2, 2.5e6)).unwrap();
        assert!(duo.per_station[0].mean_access_delay_s > lone.per_station[0].mean_access_delay_s);
        // A lone light station mostly gets immediate access (empty
        // queue, idle channel → DIFS + exchange, no backoff); the rare
        // queued frame pays the initial backoff too. Closed form:
        // E[S] = t_s / (1 − λ·E[b₀]·σ).
        let t_s = phy().difs().as_secs_f64() + phy().success_exchange(1500).as_secs_f64();
        let backoff0 = 15.5 * phy().slot.as_secs_f64();
        let lambda = 1e6 / (1500.0 * 8.0);
        let expect = t_s / (1.0 - lambda * backoff0);
        let rel = (lone.per_station[0].mean_access_delay_s - expect).abs() / expect;
        assert!(
            rel < 1e-9,
            "lone delay {} vs {expect}",
            lone.per_station[0].mean_access_delay_s
        );
        // And it sits strictly between the no-backoff and full-backoff
        // cycles.
        assert!(lone.per_station[0].mean_access_delay_s > t_s);
        assert!(lone.per_station[0].mean_access_delay_s < t_s + backoff0);
    }

    #[test]
    fn sampler_mean_matches_closed_form_mean() {
        for (name, stations) in [
            ("light-2", sym(2, 1.5e6)),
            ("knee-2", sym(2, 3.0e6)),
            ("sat-5", sym(5, 6e6)),
        ] {
            let m = NonSatModel::solve(&phy(), &stations).unwrap();
            let draws = m.access_delays(&phy(), 0, 20_000, 0xA0A);
            let mean = draws.iter().sum::<f64>() / draws.len() as f64;
            let rel = (mean - m.per_station[0].mean_access_delay_s).abs()
                / m.per_station[0].mean_access_delay_s;
            assert!(
                rel < 0.05,
                "{name}: sampled {mean:.6} vs closed-form {:.6} (rel {rel:.3})",
                m.per_station[0].mean_access_delay_s
            );
        }
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let m = NonSatModel::solve(&phy(), &sym(2, 3e6)).unwrap();
        let a = m.access_delays(&phy(), 0, 300, 7);
        let b = m.access_delays(&phy(), 0, 300, 7);
        let c = m.access_delays(&phy(), 0, 300, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn bad_input_is_reported_not_panicked() {
        assert_eq!(
            NonSatModel::solve(&phy(), &[]).unwrap_err(),
            NonSatError::BadInput
        );
        assert_eq!(
            NonSatModel::solve(
                &phy(),
                &[NonSatStation {
                    rate_bps: -1.0,
                    bytes: 1500
                }]
            )
            .unwrap_err(),
            NonSatError::BadInput
        );
    }
}
