//! The mergeable-accumulator abstraction behind streaming replication.
//!
//! The scenario engine (`csmaprobe_desim::replicate::run_reduce`) folds
//! each replication into a per-worker accumulator and merges the
//! accumulators in deterministic chunk order. [`Accumulate`] is the
//! contract those accumulators satisfy: an associative combine whose
//! result matches having pushed both observation streams into a single
//! accumulator (exactly, or up to floating-point rounding / a
//! documented approximation — see each implementor).
//!
//! Implementors in this crate:
//!
//! * [`crate::online::OnlineStats`] — Chan et al. parallel update
//!   (exact up to rounding).
//! * [`crate::p2::P2Quantile`] — count-weighted marker merge
//!   (approximate; property-tested against sequential push).
//! * [`crate::histogram::Histogram`] — bin-wise count addition (exact;
//!   panics on mismatched binning).
//! * [`crate::transient::IndexedSeries`] — per-index sample
//!   concatenation (exact; respects the per-index cap).
//! * [`crate::transient::IndexedStats`] — per-index [`crate::online::OnlineStats`] merge.
//! * [`crate::transient::IndexedQuantile`] — per-index
//!   [`crate::p2::P2Quantile`] marker merge (approximate,
//!   deterministic): streamed tail percentiles per packet index.

/// An accumulator that can absorb another accumulator of the same
/// shape, as if the other's observations had been pushed into `self`.
///
/// `merge` must be associative, and merging a freshly-created ("empty")
/// accumulator must be the identity, so that chunk-ordered reduction
/// over any chunk partition yields the same result as a sequential
/// pass.
pub trait Accumulate: Sized {
    /// Absorb `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Pairs of accumulators merge component-wise — convenient for
/// experiments that accumulate two quantities per replication.
impl<A: Accumulate, B: Accumulate> Accumulate for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

/// Vectors merge by concatenation. Under the chunk-ordered reduce this
/// materialises per-replication outputs **in replication order** — the
/// escape hatch for sweep cells whose rows genuinely are one value per
/// replication (e.g. one steady-state operating point per cell).
impl<T> Accumulate for Vec<T> {
    fn merge(&mut self, mut other: Self) {
        self.append(&mut other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineStats;

    #[test]
    fn vec_merges_by_concatenation() {
        let mut a = vec![1, 2];
        a.merge(vec![3]);
        a.merge(Vec::new());
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn tuple_merges_componentwise() {
        let mut a = (
            OnlineStats::from_slice(&[1.0]),
            OnlineStats::from_slice(&[10.0]),
        );
        let b = (
            OnlineStats::from_slice(&[3.0]),
            OnlineStats::from_slice(&[30.0]),
        );
        a.merge(b);
        assert_eq!(a.0.count(), 2);
        assert!((a.0.mean() - 2.0).abs() < 1e-12);
        assert!((a.1.mean() - 20.0).abs() < 1e-12);
    }
}
