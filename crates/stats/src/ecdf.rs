//! Empirical cumulative distribution functions.
//!
//! [`Ecdf`] supports both the classic right-continuous step evaluation
//! and a **linearly interpolated** evaluation. The paper's footnote 2
//! notes that when comparing two empirical discrete distributions with
//! the KS test, one of them is converted to a continuous one by linear
//! interpolation — [`Ecdf::eval_interpolated`] is that conversion.

/// An empirical CDF over a sorted sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (need not be sorted; NaNs are rejected).
    ///
    /// Panics if the sample is empty or contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(!sample.is_empty(), "ECDF of an empty sample");
        assert!(
            sample.iter().all(|x| !x.is_nan()),
            "ECDF sample contains NaN"
        );
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: sample }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples); present for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted observations.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Right-continuous step evaluation: `F(x) = #{X_i ≤ x} / n`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Linearly interpolated evaluation.
    ///
    /// The interpolation nodes are `(X_(k), k/n)` for the sorted sample
    /// `X_(1) ≤ … ≤ X_(n)`, with `F = 0` below `X_(1)`'s left
    /// neighbourhood: between consecutive distinct order statistics the
    /// CDF rises linearly instead of jumping. At and beyond `X_(n)` the
    /// value is 1; strictly below `X_(1)` it approaches `1/n` linearly
    /// from `(X_(0) := X_(1))`, i.e. evaluates to values in `(0, 1/n]`
    /// only at `X_(1)` itself (0 below).
    pub fn eval_interpolated(&self, x: f64) -> f64 {
        let n = self.sorted.len();
        let first = self.sorted[0];
        let last = self.sorted[n - 1];
        if x < first {
            return 0.0;
        }
        if x >= last {
            return 1.0;
        }
        // Find the segment [X_(k), X_(k+1)) containing x (1-based k).
        let k = self.sorted.partition_point(|&v| v <= x); // #{X_i <= x}
        let x_k = self.sorted[k - 1];
        let x_next = self.sorted[k];
        let f_k = k as f64 / n as f64;
        let f_next = (k + 1) as f64 / n as f64;
        if x_next == x_k {
            return f_k;
        }
        f_k + (f_next - f_k) * (x - x_k) / (x_next - x_k)
    }

    /// The `p`-quantile by inverted step ECDF (type-1). `p` in `[0,1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p={p}");
        let n = self.sorted.len();
        if p <= 0.0 {
            return self.sorted[0];
        }
        let k = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[k - 1]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_eval_counts_correctly() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(1.5), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn interpolation_is_continuous_and_monotone() {
        let e = Ecdf::new(vec![0.0, 1.0, 2.0, 3.0]);
        // At the sample points: k/n.
        assert_eq!(e.eval_interpolated(0.0), 0.25);
        assert_eq!(e.eval_interpolated(1.0), 0.5);
        assert!((e.eval_interpolated(0.5) - 0.375).abs() < 1e-12);
        // Monotone on a fine grid.
        let mut prev = -1.0;
        for i in -10..50 {
            let x = i as f64 / 10.0;
            let f = e.eval_interpolated(x);
            assert!(f >= prev);
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert_eq!(e.eval_interpolated(-0.1), 0.0);
        assert_eq!(e.eval_interpolated(3.0), 1.0);
        assert_eq!(e.eval_interpolated(10.0), 1.0);
    }

    #[test]
    fn interpolation_handles_ties() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        // At x slightly above 2, F should be >= 0.75 (three obs <= 2).
        assert!(e.eval_interpolated(2.0) >= 0.74);
        assert!(e.eval_interpolated(2.5) > e.eval_interpolated(2.0));
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(0.75), 30.0);
        assert_eq!(e.quantile(1.0), 40.0);
    }

    #[test]
    fn mean_matches() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }
}
