//! Autocorrelation analysis of measurement series.
//!
//! Dispersion measurements average correlated samples (consecutive
//! packets of a train share channel state), so their effective sample
//! size is smaller than the packet count. The lag-k autocorrelation
//! and the integrated autocorrelation time quantify that, and give a
//! principled way to size steady-state reference windows (used when
//! choosing the pooled "last k packets" reference of §4).

use crate::online::OnlineStats;

/// Lag-`k` sample autocorrelation of `xs` (biased, normalised by the
/// lag-0 variance — the standard estimator).
///
/// Returns 0 for series shorter than `k + 2` or with zero variance.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if n < k + 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var <= 0.0 {
        return 0.0;
    }
    let cov: f64 = xs
        .windows(k + 1)
        .map(|w| (w[0] - mean) * (w[k] - mean))
        .sum();
    cov / var
}

/// The autocorrelation function up to `max_lag` (inclusive), starting
/// at lag 0 (always 1 for non-degenerate series).
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag).map(|k| autocorrelation(xs, k)).collect()
}

/// Integrated autocorrelation time
/// `τ = 1 + 2·Σ_k ρ(k)`, summed with Geyer's initial-positive-sequence
/// truncation (stop at the first non-positive pair sum). The effective
/// sample size of an `n`-sample mean is `n/τ`.
pub fn integrated_autocorr_time(xs: &[f64]) -> f64 {
    let max_lag = (xs.len() / 3).max(1);
    let rho = acf(xs, max_lag);
    let mut tau = 1.0;
    let mut k = 1;
    while k + 1 < rho.len() {
        let pair = rho[k] + rho[k + 1];
        if pair <= 0.0 {
            break;
        }
        tau += 2.0 * pair;
        k += 2;
    }
    tau.max(1.0)
}

/// Effective sample size `n/τ` of a correlated series.
pub fn effective_sample_size(xs: &[f64]) -> f64 {
    xs.len() as f64 / integrated_autocorr_time(xs)
}

/// Standard error of the mean of a correlated series:
/// `σ·√(τ/n)`.
pub fn correlated_std_err(xs: &[f64]) -> f64 {
    let s = OnlineStats::from_slice(xs);
    s.std_dev() * (integrated_autocorr_time(xs) / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        // Simple LCG noise driving an AR(1) process.
        let mut state = seed;
        let mut unif = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut xs = Vec::with_capacity(n);
        let mut x = 0.0;
        for _ in 0..n {
            x = phi * x + unif();
            xs.push(x);
        }
        xs
    }

    #[test]
    fn lag_zero_is_one() {
        let xs = ar1(500, 0.5, 1);
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iid_series_has_tiny_correlation() {
        let xs = ar1(20_000, 0.0, 2);
        let r1 = autocorrelation(&xs, 1);
        assert!(r1.abs() < 0.03, "rho(1) = {r1}");
        let tau = integrated_autocorr_time(&xs);
        assert!(tau < 1.3, "tau = {tau}");
    }

    #[test]
    fn ar1_correlation_matches_phi() {
        let phi = 0.7;
        let xs = ar1(50_000, phi, 3);
        let r1 = autocorrelation(&xs, 1);
        assert!((r1 - phi).abs() < 0.03, "rho(1) = {r1}");
        let r2 = autocorrelation(&xs, 2);
        assert!((r2 - phi * phi).abs() < 0.04, "rho(2) = {r2}");
        // τ for AR(1) is (1+φ)/(1−φ) ≈ 5.67.
        let tau = integrated_autocorr_time(&xs);
        assert!((4.3..7.2).contains(&tau), "tau = {tau}");
    }

    #[test]
    fn effective_sample_size_shrinks_with_correlation() {
        let iid = ar1(10_000, 0.0, 4);
        let corr = ar1(10_000, 0.8, 5);
        assert!(effective_sample_size(&corr) < 0.5 * effective_sample_size(&iid));
    }

    #[test]
    fn correlated_std_err_exceeds_naive() {
        let xs = ar1(5_000, 0.8, 6);
        let naive = OnlineStats::from_slice(&xs).std_err();
        assert!(correlated_std_err(&xs) > 1.5 * naive);
    }

    #[test]
    fn degenerate_series_are_safe() {
        assert_eq!(autocorrelation(&[1.0, 1.0, 1.0], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0], 1), 0.0);
        assert!(integrated_autocorr_time(&[2.0, 2.0, 2.0, 2.0]) >= 1.0);
    }
}
