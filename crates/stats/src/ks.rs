//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used exactly as in §4 of the paper: the access-delay sample of each
//! probe-packet index is compared against the steady-state sample (the
//! delays of the last packets of long trains). Per the paper's footnote
//! 2, one of the two empirical discrete distributions is converted to a
//! continuous one by linear interpolation before computing the
//! statistic; the 95 % critical value is
//! `c(α)·√((n+m)/(n·m))` with `c(0.05) = 1.358`.

use crate::ecdf::Ecdf;

/// Result of a two-sample KS comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsOutcome {
    /// The KS statistic `sup |F₁ − F₂|`.
    pub statistic: f64,
    /// The critical value at the requested significance.
    pub threshold: f64,
    /// Whether the null hypothesis (same distribution) is rejected,
    /// i.e. `statistic > threshold`.
    pub reject: bool,
}

/// `c(α)` coefficients for the large-sample two-sample KS critical
/// value. Values from the NIST/SEMATECH handbook the paper cites.
pub fn ks_coefficient(alpha: f64) -> f64 {
    // Exact inversion of the Kolmogorov distribution tail:
    // c(α) = sqrt(-ln(α/2) / 2).
    debug_assert!(alpha > 0.0 && alpha < 1.0);
    (-(alpha / 2.0).ln() / 2.0).sqrt()
}

/// The large-sample critical value `c(α)·√((n+m)/(n·m))`.
pub fn ks_critical_value(n: usize, m: usize, alpha: f64) -> f64 {
    debug_assert!(n > 0 && m > 0);
    ks_coefficient(alpha) * ((n + m) as f64 / (n as f64 * m as f64)).sqrt()
}

/// Two-sample KS statistic between `sample` (step ECDF) and `reference`
/// (linearly interpolated ECDF), evaluated at the observation points of
/// both samples including left limits at the step discontinuities.
pub fn ks_statistic(sample: &Ecdf, reference: &Ecdf) -> f64 {
    let mut sup: f64 = 0.0;
    let n = sample.len() as f64;
    // At each of the sample's jump points evaluate both the pre-jump
    // and post-jump difference.
    for (i, &x) in sample.values().iter().enumerate() {
        let f_ref = reference.eval_interpolated(x);
        let f_post = sample.eval(x);
        let f_pre = i as f64 / n; // left limit of the step function
        sup = sup.max((f_post - f_ref).abs());
        sup = sup.max((f_pre - f_ref).abs());
    }
    // The interpolated ECDF has kinks at the reference's points;
    // evaluate there too.
    for &x in reference.values() {
        let f_ref = reference.eval_interpolated(x);
        let f_s = sample.eval(x);
        sup = sup.max((f_s - f_ref).abs());
    }
    sup
}

/// Run the full two-sample KS comparison at significance `alpha`
/// (0.05 for the paper's 95 % confidence threshold).
///
/// `sample` is tested against `reference`; the reference ECDF is the
/// linearly-interpolated one, per the paper's methodology.
pub fn two_sample_ks(sample: &[f64], reference: &[f64], alpha: f64) -> KsOutcome {
    let s = Ecdf::new(sample.to_vec());
    let r = Ecdf::new(reference.to_vec());
    let statistic = ks_statistic(&s, &r);
    let threshold = ks_critical_value(s.len(), r.len(), alpha);
    KsOutcome {
        statistic,
        threshold,
        reject: statistic > threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_grid(n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * (i as f64 + 0.5) / n as f64)
            .collect()
    }

    #[test]
    fn coefficient_reference_values() {
        // NIST table: c(0.10)=1.224, c(0.05)=1.358, c(0.01)=1.628.
        assert!((ks_coefficient(0.10) - 1.2238).abs() < 1e-3);
        assert!((ks_coefficient(0.05) - 1.3581).abs() < 1e-3);
        assert!((ks_coefficient(0.01) - 1.6276).abs() < 1e-3);
    }

    #[test]
    fn identical_samples_accept() {
        let xs = uniform_grid(500, 0.0, 1.0);
        let out = two_sample_ks(&xs, &xs, 0.05);
        // Statistic is not exactly 0 because one ECDF is interpolated,
        // but must be well below the threshold.
        assert!(!out.reject, "stat={} thr={}", out.statistic, out.threshold);
    }

    #[test]
    fn same_distribution_accepts() {
        // Two independent uniform samples.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let a: Vec<f64> = (0..800).map(|_| next()).collect();
        let b: Vec<f64> = (0..800).map(|_| next()).collect();
        let out = two_sample_ks(&a, &b, 0.05);
        assert!(!out.reject, "stat={} thr={}", out.statistic, out.threshold);
    }

    #[test]
    fn shifted_distribution_rejects() {
        let a = uniform_grid(400, 0.0, 1.0);
        let b = uniform_grid(400, 0.5, 1.5);
        let out = two_sample_ks(&a, &b, 0.05);
        assert!(out.reject);
        // A shift of 0.5 on unit uniforms gives sup-difference ~0.5.
        assert!((out.statistic - 0.5).abs() < 0.05, "{}", out.statistic);
    }

    #[test]
    fn statistic_bounded_by_one() {
        let a = uniform_grid(100, 0.0, 1.0);
        let b = uniform_grid(100, 100.0, 101.0);
        let out = two_sample_ks(&a, &b, 0.05);
        assert!(out.statistic <= 1.0 + 1e-12);
        assert!(out.statistic > 0.99);
    }

    #[test]
    fn critical_value_shrinks_with_sample_size() {
        assert!(ks_critical_value(1000, 1000, 0.05) < ks_critical_value(100, 100, 0.05));
        // Symmetric in n and m.
        assert!(
            (ks_critical_value(50, 200, 0.05) - ks_critical_value(200, 50, 0.05)).abs() < 1e-15
        );
    }

    #[test]
    fn small_vs_large_reference() {
        // A tight cluster inside a wide reference must reject.
        let sample = vec![0.50, 0.51, 0.52, 0.49, 0.505, 0.495, 0.515, 0.485];
        let reference = uniform_grid(1000, 0.0, 1.0);
        let out = two_sample_ks(&sample, &reference, 0.05);
        assert!(out.reject);
    }
}
