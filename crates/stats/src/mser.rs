//! MSER-m warm-up truncation (White's Marginal Standard Error Rule).
//!
//! §7.4 of the paper treats the access-delay transient as a classic
//! *simulation warm-up* problem and applies **MSER-2** to the
//! inter-arrival times of a 20-packet train: the observations that the
//! heuristic flags as warm-up are removed before computing the output
//! dispersion, which pulls the short-train rate-response curve back
//! onto the steady-state one (Fig 17).
//!
//! Definition (Joines & Barton et al., WSC 2000 — the paper's ref \[32\]):
//! batch the raw series into means of `m` consecutive observations,
//! `y_1..y_k`; for each truncation point `d` compute
//!
//! ```text
//! MSER(d) = s²_(d) / (k − d)      where s²_(d) is the variance of y_{d+1..k}
//!         = Σ_{j>d} (y_j − ȳ_d)² / (k − d)²
//! ```
//!
//! and truncate at the `d*` minimising `MSER(d)`, searching `d` over the
//! first half of the series (the standard guard against degenerate
//! truncation of everything).

/// Result of an MSER-m analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MserResult {
    /// Batch size `m` used.
    pub m: usize,
    /// Batch means `y_1..y_k`.
    pub batch_means: Vec<f64>,
    /// Optimal truncation point in *batches*.
    pub truncate_batches: usize,
    /// Optimal truncation point in *raw observations*
    /// (`truncate_batches · m`).
    pub truncate_raw: usize,
    /// The MSER statistic at the optimum.
    pub min_statistic: f64,
}

/// Run MSER-m on `series` with batch size `m`.
///
/// Returns `None` when the series is too short to form at least two
/// batches (no meaningful truncation decision exists).
///
/// ```
/// use csmaprobe_stats::mser::mser_m;
///
/// // A warm-up ramp followed by a stationary tail.
/// let mut series = vec![9.0, 7.0, 5.0, 3.0];
/// series.extend(std::iter::repeat(1.0).take(40));
/// let r = mser_m(&series, 2).unwrap();
/// assert!(r.truncate_raw >= 4); // the ramp is flagged as warm-up
/// ```
pub fn mser_m(series: &[f64], m: usize) -> Option<MserResult> {
    assert!(m >= 1, "batch size must be >= 1");
    let k = series.len() / m;
    if k < 2 {
        return None;
    }
    let batch_means: Vec<f64> = (0..k)
        .map(|j| series[j * m..(j + 1) * m].iter().sum::<f64>() / m as f64)
        .collect();

    // Suffix sums let each candidate d be evaluated in O(1).
    let mut suf_sum = vec![0.0; k + 1];
    let mut suf_sq = vec![0.0; k + 1];
    for j in (0..k).rev() {
        suf_sum[j] = suf_sum[j + 1] + batch_means[j];
        suf_sq[j] = suf_sq[j + 1] + batch_means[j] * batch_means[j];
    }

    // Search d in [0, k/2] per the standard MSER guard.
    let d_max = k / 2;
    let mut best_d = 0usize;
    let mut best_stat = f64::INFINITY;
    for d in 0..=d_max {
        let n = (k - d) as f64;
        if n < 1.0 {
            break;
        }
        let mean = suf_sum[d] / n;
        let ss = suf_sq[d] - n * mean * mean;
        let stat = ss.max(0.0) / (n * n);
        if stat < best_stat {
            best_stat = stat;
            best_d = d;
        }
    }

    Some(MserResult {
        m,
        batch_means,
        truncate_batches: best_d,
        truncate_raw: best_d * m,
        min_statistic: best_stat,
    })
}

/// Convenience: return `series` with the MSER-m warm-up removed (the
/// whole series if it is too short to analyse).
pub fn truncate_warmup(series: &[f64], m: usize) -> Vec<f64> {
    match mser_m(series, m) {
        Some(r) => series[r.truncate_raw..].to_vec(),
        None => series.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_series_keeps_everything() {
        // Constant series: MSER(0) already minimal.
        let xs = vec![5.0; 40];
        let r = mser_m(&xs, 2).unwrap();
        assert_eq!(r.truncate_batches, 0);
        assert_eq!(r.truncate_raw, 0);
    }

    #[test]
    fn obvious_warmup_is_cut() {
        // A big initial transient followed by a flat tail.
        let mut xs = vec![100.0, 80.0, 60.0, 40.0, 20.0, 10.0];
        xs.extend(std::iter::repeat(1.0).take(60));
        let r = mser_m(&xs, 2).unwrap();
        assert!(
            r.truncate_raw >= 4,
            "should cut most of the ramp, got {}",
            r.truncate_raw
        );
        // After truncation the series is (nearly) flat.
        let tail = &xs[r.truncate_raw..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(mean < 5.0, "tail mean {mean}");
    }

    #[test]
    fn truncation_capped_at_half() {
        // Monotone ramp: variance keeps shrinking, but d <= k/2.
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let r = mser_m(&xs, 2).unwrap();
        assert!(r.truncate_batches <= 10); // k = 20, d_max = 10
    }

    #[test]
    fn batch_means_are_correct() {
        let xs = vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0];
        let r = mser_m(&xs, 2).unwrap();
        assert_eq!(r.batch_means, vec![2.0, 6.0, 3.0]);
        assert_eq!(r.m, 2);
    }

    #[test]
    fn too_short_series_returns_none() {
        assert!(mser_m(&[1.0], 2).is_none());
        assert!(mser_m(&[1.0, 2.0, 3.0], 2).is_none()); // k = 1
        assert!(mser_m(&[], 1).is_none());
    }

    #[test]
    fn mser_one_equals_no_batching() {
        let mut xs = vec![50.0, 25.0, 12.0];
        xs.extend(std::iter::repeat(2.0).take(30));
        let r = mser_m(&xs, 1).unwrap();
        assert_eq!(r.truncate_raw, r.truncate_batches);
        assert!(r.truncate_raw >= 3);
    }

    #[test]
    fn truncate_warmup_helper() {
        let mut xs = vec![100.0; 4];
        xs.extend(std::iter::repeat(1.0).take(40));
        let out = truncate_warmup(&xs, 2);
        assert!(out.len() <= 40 + 1);
        assert!(out.iter().all(|&x| x < 100.0));
        // Short series: unchanged.
        let short = vec![1.0, 2.0];
        assert_eq!(truncate_warmup(&short, 2), short);
    }
}
