//! Fixed-width histograms (used to reproduce Fig 7: access-delay
//! histograms of the first vs. the 500th probe packet).

/// A fixed-width histogram over `[lo, hi)` with values outside the
/// range clamped into the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`. Panics unless `lo < hi` and `bins ≥ 1`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        assert!(bins >= 1, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Build a histogram spanning the sample's own min/max.
    ///
    /// Panics if the sample is empty or degenerate (all values equal —
    /// the range would be empty; callers should special-case that).
    pub fn from_sample(sample: &[f64], bins: usize) -> Self {
        assert!(!sample.is_empty(), "histogram of empty sample");
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < hi, "degenerate sample (all values equal)");
        // Widen the top edge slightly so the maximum lands inside.
        let mut h = Histogram::new(lo, hi + (hi - lo) * 1e-9, bins);
        for &x in sample {
            h.add(x);
        }
        h
    }

    /// Insert one observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = if x < self.lo {
            0
        } else {
            (((x - self.lo) / w) as usize).min(self.counts.len() - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Normalised density per bin (integrates to 1 over the range).
    pub fn density(&self) -> Vec<f64> {
        let w = self.bin_width();
        let n = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / (n * w)).collect()
    }

    /// `(bin_center, count)` rows — what the figure harness prints.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// Merge another histogram's counts into this one. Panics unless
    /// both share the same range and bin count (merging differently
    /// binned histograms has no meaningful result).
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "merging histograms with different binning: [{}, {})/{} vs [{}, {})/{}",
            self.lo,
            self.hi,
            self.counts.len(),
            other.lo,
            other.hi,
            other.counts.len()
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
    }

    /// The mode's bin centre (first maximal bin on ties).
    pub fn mode(&self) -> f64 {
        let (idx, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(i, &c)| (c, std::cmp::Reverse(*i)))
            .unwrap();
        self.bin_center(idx)
    }
}

impl crate::accumulate::Accumulate for Histogram {
    /// Exact: bin-wise count addition (same-binning histograms only).
    fn merge(&mut self, other: Self) {
        Histogram::merge(self, &other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.add(1.0);
        b.add(1.5);
        b.add(9.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[4], 1);
    }

    #[test]
    #[should_panic(expected = "different binning")]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn counts_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9] {
            h.add(x);
        }
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(99.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn from_sample_covers_extremes() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let h = Histogram::from_sample(&xs, 3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn density_integrates_to_one() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let h = Histogram::from_sample(&xs, 20);
        let integral: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bin_centers_are_centred() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
        assert!((h.bin_width() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mode_finds_heaviest_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for _ in 0..5 {
            h.add(1.5);
        }
        h.add(0.5);
        assert!((h.mode() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rows_align_with_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.1);
        h.add(1.9);
        h.add(1.5);
        let rows = h.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0.5, 1));
        assert_eq!(rows[1], (1.5, 2));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Histogram::from_sample(&[], 3);
    }
}
