//! # csmaprobe-stats
//!
//! Measurement statistics for the `csmaprobe` workspace. Everything the
//! paper's methodology needs, implemented from scratch (no third-party
//! stats dependencies):
//!
//! * [`online`] — Welford online moments, merging, and normal-theory
//!   confidence intervals.
//! * [`ecdf`] — empirical CDFs, both step and **linearly interpolated**
//!   (the paper's footnote 2 interpolates one ECDF before comparing
//!   discrete distributions).
//! * [`ks`] — the two-sample Kolmogorov–Smirnov goodness-of-fit test
//!   used in §4 to detect the access-delay transient, with the
//!   `c(α)·√((n+m)/nm)` critical value.
//! * [`histogram`] — fixed-width histograms (Fig 7).
//! * [`mser`] — the MSER-m warm-up truncation heuristic applied in §7.4
//!   (MSER-2 in Fig 17).
//! * [`transient`] — per-packet-index accumulators across Monte-Carlo
//!   replications and the tolerance-based transient-length estimator of
//!   §4.1 (Fig 10).
//! * [`accumulate`] — the [`Accumulate`] mergeable-accumulator trait the
//!   scenario engine's streaming reduce is built on.

pub mod accumulate;
pub mod autocorr;
pub mod ecdf;
pub mod histogram;
pub mod ks;
pub mod mser;
pub mod online;
pub mod p2;
pub mod transient;

pub use accumulate::Accumulate;
pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use ks::{ks_critical_value, two_sample_ks, KsOutcome};
pub use mser::{mser_m, MserResult};
pub use online::OnlineStats;
pub use p2::P2Quantile;
pub use transient::{IndexedSeries, IndexedStats, TransientEstimate};
