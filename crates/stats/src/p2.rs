//! The P² (piecewise-parabolic) streaming quantile estimator
//! (Jain & Chlamtac, 1985).
//!
//! Tracks a single quantile of a stream in O(1) memory — no sample
//! buffer — which matters when collecting per-packet access-delay
//! quantiles over millions of simulated packets. Five markers hold the
//! running min, three interior points, and the max; marker heights are
//! adjusted with a parabolic interpolation as observations arrive.

/// Streaming estimator of one quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Marker positions (integer counts, stored as f64 per the paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    /// Initial observations until the estimator is primed.
    init: Vec<f64>,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p = {p} out of (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [0.0; 5],
            np: [0.0; 5],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// The median estimator.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Number of observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.q.copy_from_slice(&self.init);
                self.n = [1.0, 2.0, 3.0, 4.0, 5.0];
                self.np = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ];
            }
            return;
        }

        // Find the cell k containing x and update extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[k] <= x < q[k+1]
            (0..4).find(|&i| x < self.q[i + 1]).unwrap()
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right = self.n[i + 1] - self.n[i];
            let left = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current quantile estimate (exact for fewer than five
    /// observations).
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.init.len() < 5 || self.count <= 5 {
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let k = ((self.p * v.len() as f64).ceil() as usize).clamp(1, v.len());
            return v[k - 1];
        }
        self.q[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stream(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut est = P2Quantile::median();
        for x in uniform_stream(100_000, 1) {
            est.push(x);
        }
        assert!((est.value() - 0.5).abs() < 0.01, "median {}", est.value());
    }

    #[test]
    fn tail_quantiles_converge() {
        for (p, expect) in [(0.9, 0.9), (0.99, 0.99), (0.1, 0.1)] {
            let mut est = P2Quantile::new(p);
            for x in uniform_stream(200_000, 7) {
                est.push(x);
            }
            assert!(
                (est.value() - expect).abs() < 0.02,
                "p={p}: {}",
                est.value()
            );
        }
    }

    #[test]
    fn matches_exact_quantile_on_exponential() {
        // Exponential(1): median = ln 2 ≈ 0.693.
        let mut est = P2Quantile::median();
        for x in uniform_stream(200_000, 13) {
            est.push(-(1.0f64 - x).ln());
        }
        assert!(
            (est.value() - std::f64::consts::LN_2).abs() < 0.02,
            "exp median {}",
            est.value()
        );
    }

    #[test]
    fn small_samples_are_exact() {
        let mut est = P2Quantile::median();
        assert!(est.value().is_nan());
        for x in [5.0, 1.0, 3.0] {
            est.push(x);
        }
        assert_eq!(est.value(), 3.0);
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn monotone_under_shift() {
        // Estimates must order correctly for shifted streams.
        let base = uniform_stream(50_000, 21);
        let mut lo = P2Quantile::new(0.75);
        let mut hi = P2Quantile::new(0.75);
        for &x in &base {
            lo.push(x);
            hi.push(x + 1.0);
        }
        assert!((hi.value() - lo.value() - 1.0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "out of (0,1)")]
    fn rejects_invalid_p() {
        P2Quantile::new(1.0);
    }
}
