//! The P² (piecewise-parabolic) streaming quantile estimator
//! (Jain & Chlamtac, 1985).
//!
//! Tracks a single quantile of a stream in O(1) memory — no sample
//! buffer — which matters when collecting per-packet access-delay
//! quantiles over millions of simulated packets. Five markers hold the
//! running min, three interior points, and the max; marker heights are
//! adjusted with a parabolic interpolation as observations arrive.

/// Streaming estimator of one quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Marker positions (integer counts, stored as f64 per the paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    /// Initial observations until the estimator is primed.
    init: Vec<f64>,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p = {p} out of (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [0.0; 5],
            np: [0.0; 5],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// The median estimator.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Number of observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan());
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.q.copy_from_slice(&self.init);
                self.n = [1.0, 2.0, 3.0, 4.0, 5.0];
                self.np = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ];
            }
            return;
        }

        // Find the cell k containing x and update extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[k] <= x < q[k+1]
            (0..4).find(|&i| x < self.q[i + 1]).unwrap()
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right = self.n[i + 1] - self.n[i];
            let left = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Merge another estimator of the **same quantile** into this one.
    ///
    /// P² keeps only five markers, so an exact merge is impossible; this
    /// uses the count-weighted marker combination: exact min/max, the
    /// interior marker heights averaged by observation count, marker
    /// positions summed. An estimator with five or fewer observations
    /// still holds its raw sample and is replayed exactly. The result
    /// agrees with a sequential single-stream pass to within the
    /// estimator's own accuracy (property-tested in `tests/property.rs`).
    pub fn merge(&mut self, other: P2Quantile) {
        assert!(
            (self.p - other.p).abs() < 1e-12,
            "merging P² estimators of different quantiles ({} vs {})",
            self.p,
            other.p
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other;
            return;
        }
        // With ≤ 5 observations `init` still holds the raw sample:
        // replay it exactly.
        if other.count <= 5 {
            for &x in &other.init {
                self.push(x);
            }
            return;
        }
        if self.count <= 5 {
            let small = std::mem::replace(self, other);
            for &x in &small.init {
                self.push(x);
            }
            return;
        }

        // Both primed: count-weighted marker combination.
        let wa = self.count as f64;
        let wb = other.count as f64;
        let total = self.count + other.count;
        let mut q = [
            self.q[0].min(other.q[0]),
            (self.q[1] * wa + other.q[1] * wb) / (wa + wb),
            (self.q[2] * wa + other.q[2] * wb) / (wa + wb),
            (self.q[3] * wa + other.q[3] * wb) / (wa + wb),
            self.q[4].max(other.q[4]),
        ];
        for i in 1..5 {
            if q[i] < q[i - 1] {
                q[i] = q[i - 1];
            }
        }
        // Positions: endpoints exact, interiors summed, forced strictly
        // increasing with room for the markers that follow.
        let mut n = [
            1.0,
            self.n[1] + other.n[1],
            self.n[2] + other.n[2],
            self.n[3] + other.n[3],
            total as f64,
        ];
        for i in 1..4 {
            n[i] = n[i].max(n[i - 1] + 1.0).min(total as f64 - (4 - i) as f64);
        }
        // Desired positions: for a primed stream of n observations,
        // np(n) = base + (n−5)·dn. The sequential equivalent of the
        // merged stream is base + (a+b−5)·dn, so summing both streams'
        // np must subtract one base and add back the 5·dn the second
        // priming consumed.
        let base = [
            1.0,
            1.0 + 2.0 * self.p,
            1.0 + 4.0 * self.p,
            3.0 + 2.0 * self.p,
            5.0,
        ];
        let mut np = [0.0; 5];
        for i in 0..5 {
            np[i] = self.np[i] + other.np[i] - base[i] + 5.0 * self.dn[i];
        }
        self.q = q;
        self.n = n;
        self.np = np;
        self.count = total;
    }

    /// The current quantile estimate (exact for fewer than five
    /// observations).
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.init.len() < 5 || self.count <= 5 {
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let k = ((self.p * v.len() as f64).ceil() as usize).clamp(1, v.len());
            return v[k - 1];
        }
        self.q[2]
    }
}

impl crate::accumulate::Accumulate for P2Quantile {
    /// Approximate (count-weighted marker merge); see
    /// [`P2Quantile::merge`].
    fn merge(&mut self, other: Self) {
        P2Quantile::merge(self, other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_of_split_stream_matches_whole() {
        let xs = uniform_stream(60_000, 5);
        let mut whole = P2Quantile::median();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = P2Quantile::median();
        let mut b = P2Quantile::median();
        for &x in &xs[..37_000] {
            a.push(x);
        }
        for &x in &xs[37_000..] {
            b.push(x);
        }
        a.merge(b);
        assert_eq!(a.count(), whole.count());
        assert!(
            (a.value() - whole.value()).abs() < 0.02,
            "merged {} vs sequential {}",
            a.value(),
            whole.value()
        );
    }

    #[test]
    fn merge_with_tiny_side_replays_exactly() {
        let mut big = P2Quantile::median();
        for x in uniform_stream(10_000, 9) {
            big.push(x);
        }
        let mut tiny = P2Quantile::median();
        tiny.push(0.5);
        tiny.push(0.25);
        let mut expect = big.clone();
        expect.push(0.5);
        expect.push(0.25);
        big.merge(tiny);
        assert_eq!(big.count(), expect.count());
        assert_eq!(big.value(), expect.value());
        // And the symmetric case: tiny absorbs big.
        let mut tiny2 = P2Quantile::median();
        tiny2.push(0.5);
        let mut big2 = P2Quantile::median();
        for x in uniform_stream(10_000, 9) {
            big2.push(x);
        }
        tiny2.merge(big2);
        assert_eq!(tiny2.count(), 10_001);
        assert!((tiny2.value() - 0.5).abs() < 0.05);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = P2Quantile::new(0.9);
        for x in uniform_stream(5_000, 3) {
            a.push(x);
        }
        let before = a.value();
        a.merge(P2Quantile::new(0.9));
        assert_eq!(a.value(), before);
        let mut e = P2Quantile::new(0.9);
        e.merge(a);
        assert_eq!(e.value(), before);
    }

    #[test]
    #[should_panic(expected = "different quantiles")]
    fn merge_rejects_mismatched_p() {
        let mut a = P2Quantile::new(0.5);
        a.merge(P2Quantile::new(0.9));
    }

    fn uniform_stream(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut est = P2Quantile::median();
        for x in uniform_stream(100_000, 1) {
            est.push(x);
        }
        assert!((est.value() - 0.5).abs() < 0.01, "median {}", est.value());
    }

    #[test]
    fn tail_quantiles_converge() {
        for (p, expect) in [(0.9, 0.9), (0.99, 0.99), (0.1, 0.1)] {
            let mut est = P2Quantile::new(p);
            for x in uniform_stream(200_000, 7) {
                est.push(x);
            }
            assert!(
                (est.value() - expect).abs() < 0.02,
                "p={p}: {}",
                est.value()
            );
        }
    }

    #[test]
    fn matches_exact_quantile_on_exponential() {
        // Exponential(1): median = ln 2 ≈ 0.693.
        let mut est = P2Quantile::median();
        for x in uniform_stream(200_000, 13) {
            est.push(-(1.0f64 - x).ln());
        }
        assert!(
            (est.value() - std::f64::consts::LN_2).abs() < 0.02,
            "exp median {}",
            est.value()
        );
    }

    #[test]
    fn small_samples_are_exact() {
        let mut est = P2Quantile::median();
        assert!(est.value().is_nan());
        for x in [5.0, 1.0, 3.0] {
            est.push(x);
        }
        assert_eq!(est.value(), 3.0);
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn monotone_under_shift() {
        // Estimates must order correctly for shifted streams.
        let base = uniform_stream(50_000, 21);
        let mut lo = P2Quantile::new(0.75);
        let mut hi = P2Quantile::new(0.75);
        for &x in &base {
            lo.push(x);
            hi.push(x + 1.0);
        }
        assert!((hi.value() - lo.value() - 1.0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "out of (0,1)")]
    fn rejects_invalid_p() {
        P2Quantile::new(1.0);
    }
}
