//! Online (single-pass) moment accumulation.
//!
//! [`OnlineStats`] implements Welford's numerically stable streaming
//! mean/variance, plus min/max tracking, accumulator merging (for
//! combining per-thread partials), and a normal-theory confidence
//! interval for the mean.

/// Streaming mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build an accumulator from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (Chan et al. parallel
    /// update). The result is identical to having pushed both streams
    /// into a single accumulator, up to floating-point rounding.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by `n`).
    #[inline]
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[inline]
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation seen (`+inf` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (`-inf` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-theory confidence half-width for the mean at the given
    /// two-sided confidence level (e.g. `0.95`).
    ///
    /// Uses the normal quantile, which is accurate for the replication
    /// counts used throughout this workspace (hundreds to tens of
    /// thousands).
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        let alpha = 1.0 - confidence;
        let z = normal_quantile(1.0 - alpha / 2.0);
        z * self.std_err()
    }
}

impl crate::accumulate::Accumulate for OnlineStats {
    /// Exact (up to floating-point rounding): Chan et al. parallel
    /// update, identical to pushing both streams into one accumulator.
    fn merge(&mut self, other: Self) {
        OnlineStats::merge(self, &other);
    }
}

/// The standard normal quantile function Φ⁻¹(p) (Acklam's rational
/// approximation, |ε| < 1.15e-9).
///
/// Panics in debug builds for p outside (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "p={p} out of (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.ci_half_width(0.95).is_infinite());
    }

    #[test]
    fn mean_and_variance_match_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = OnlineStats::from_slice(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance of this classic example is 4.
        assert!((s.variance_population() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let whole = OnlineStats::from_slice(&xs);
        let mut a = OnlineStats::from_slice(&xs[..313]);
        let b = OnlineStats::from_slice(&xs[313..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut a = OnlineStats::from_slice(&xs);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn normal_quantile_reference_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        // tails
        assert!((normal_quantile(1e-6) + 4.753424).abs() < 1e-4);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..100 {
            small.push((i % 10) as f64);
        }
        for i in 0..10_000 {
            large.push((i % 10) as f64);
        }
        assert!(large.ci_half_width(0.95) < small.ci_half_width(0.95));
    }
}
