//! Per-packet-index statistics across replications and the
//! transient-length estimator of §4.1.
//!
//! The paper's Fig 6/8/9 machinery: run the same probing experiment
//! thousands of times, collect the access delay of the *i*-th packet of
//! every replication into sample *i*, and study how the per-index
//! distribution evolves toward steady state. [`IndexedSeries`] is that
//! collection; [`IndexedSeries::transient_length`] implements the §4.1
//! rule — "the first packet whose average access delay lays within
//! (tolerance) of the expected access delay in steady-state conditions".

use crate::ks::{two_sample_ks, KsOutcome};
use crate::online::OnlineStats;
use crate::p2::P2Quantile;

/// Samples of some per-packet quantity (access delay, queue size, …)
/// indexed by position in the probing sequence, accumulated across
/// replications.
///
/// Optionally capped: [`IndexedSeries::with_cap`] bounds the samples
/// retained per index. When an index exceeds the cap it is decimated by
/// keeping every other sample (deterministic, unbiased for i.i.d.
/// replications), so memory stays O(indices × cap) at any replication
/// count.
#[derive(Debug, Clone)]
pub struct IndexedSeries {
    /// `samples[i]` holds the observations of packet index `i` (0-based)
    /// across replications.
    samples: Vec<Vec<f64>>,
    /// Maximum samples retained per index (`usize::MAX` = unbounded).
    cap: usize,
}

impl Default for IndexedSeries {
    fn default() -> Self {
        IndexedSeries {
            samples: Vec::new(),
            cap: usize::MAX,
        }
    }
}

/// Outcome of a transient-length estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientEstimate {
    /// First 0-based packet index whose mean is within tolerance of the
    /// steady-state mean (`None` when no index qualifies).
    pub first_within: Option<usize>,
    /// First 0-based index from which *all* later indices stay within
    /// tolerance (robust variant).
    pub first_sustained: Option<usize>,
    /// The steady-state mean the comparison used.
    pub steady_mean: f64,
}

impl IndexedSeries {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty collection retaining at most `cap` samples per index
    /// (the dense-path reservoir of the scenario engine). Panics when
    /// `cap == 0`.
    pub fn with_cap(cap: usize) -> Self {
        assert!(cap >= 1, "per-index cap must be at least 1");
        IndexedSeries {
            samples: Vec::new(),
            cap,
        }
    }

    /// The per-index retention cap (`usize::MAX` when unbounded).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Record one replication's trajectory: `values[i]` is the quantity
    /// observed for packet index `i` in this replication. Shorter
    /// trajectories are allowed (replications where fewer packets were
    /// observed).
    pub fn push_replication(&mut self, values: &[f64]) {
        if self.samples.len() < values.len() {
            self.samples.resize_with(values.len(), Vec::new);
        }
        for (i, &v) in values.iter().enumerate() {
            self.samples[i].push(v);
            decimate_to_cap(&mut self.samples[i], self.cap);
        }
    }

    /// Absorb another collection: index-wise sample concatenation
    /// (exact when uncapped; decimated deterministically when over the
    /// cap). Used by the scenario engine's chunk-ordered reduce — with
    /// chunks merged in replication order, the uncapped result is
    /// identical to sequential [`IndexedSeries::push_replication`]
    /// calls.
    pub fn merge(&mut self, mut other: IndexedSeries) {
        if self.samples.len() < other.samples.len() {
            self.samples.resize_with(other.samples.len(), Vec::new);
        }
        for (i, src) in other.samples.iter_mut().enumerate() {
            self.samples[i].append(src);
            decimate_to_cap(&mut self.samples[i], self.cap);
        }
    }

    /// Number of packet indices tracked.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no replication has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The observations recorded for packet index `i`.
    pub fn sample(&self, i: usize) -> &[f64] {
        &self.samples[i]
    }

    /// Per-index means.
    pub fn means(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(|s| OnlineStats::from_slice(s).mean())
            .collect()
    }

    /// Per-index summary statistics.
    pub fn stats(&self) -> Vec<OnlineStats> {
        self.samples
            .iter()
            .map(|s| OnlineStats::from_slice(s))
            .collect()
    }

    /// Pool the observations of indices `[from, to)` into one sample —
    /// used for the paper's "steady-state distribution of the last 500
    /// probing packets".
    pub fn pooled(&self, from: usize, to: usize) -> Vec<f64> {
        let to = to.min(self.samples.len());
        let mut out = Vec::new();
        for i in from..to {
            out.extend_from_slice(&self.samples[i]);
        }
        out
    }

    /// Mean over the pooled observations of indices `[from, to)`.
    pub fn pooled_mean(&self, from: usize, to: usize) -> f64 {
        OnlineStats::from_slice(&self.pooled(from, to)).mean()
    }

    /// KS-test every index against a reference sample (§4, Figs 8/9):
    /// returns one [`KsOutcome`] per index, comparing the per-index
    /// sample (step ECDF) with the reference (interpolated ECDF).
    pub fn ks_profile(&self, reference: &[f64], alpha: f64) -> Vec<KsOutcome> {
        self.samples
            .iter()
            .map(|s| two_sample_ks(s, reference, alpha))
            .collect()
    }

    /// The §4.1 transient length: first index whose mean is within
    /// `tolerance` (relative) of `steady_mean`, plus the sustained
    /// variant (first index after which every index stays within).
    pub fn transient_length(&self, steady_mean: f64, tolerance: f64) -> TransientEstimate {
        let means = self.means();
        transient_length_of_means(&means, steady_mean, tolerance)
    }
}

impl crate::accumulate::Accumulate for IndexedSeries {
    fn merge(&mut self, other: Self) {
        IndexedSeries::merge(self, other);
    }
}

/// Deterministically thin `v` (keep every other sample) until it fits
/// `cap`. For i.i.d. replications this is an unbiased subsample: the
/// kept positions never depend on the values.
fn decimate_to_cap(v: &mut Vec<f64>, cap: usize) {
    while v.len() > cap {
        let mut keep = 0;
        for i in (0..v.len()).step_by(2) {
            v[keep] = v[i];
            keep += 1;
        }
        v.truncate(keep);
    }
}

/// Streaming per-packet-index moments across replications: the O(train
/// length) heart of the scenario engine's summary path. Where
/// [`IndexedSeries`] stores every observation, `IndexedStats` keeps one
/// [`OnlineStats`] per index — constant memory per index no matter the
/// replication count — and merges exactly (up to rounding) under the
/// chunk-ordered reduce.
#[derive(Debug, Clone, Default)]
pub struct IndexedStats {
    stats: Vec<OnlineStats>,
}

impl IndexedStats {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one replication's trajectory (shorter trajectories are
    /// allowed, as in [`IndexedSeries::push_replication`]).
    pub fn push_replication(&mut self, values: &[f64]) {
        if self.stats.len() < values.len() {
            self.stats.resize_with(values.len(), OnlineStats::new);
        }
        for (i, &v) in values.iter().enumerate() {
            self.stats[i].push(v);
        }
    }

    /// Record a single observation for packet index `i`.
    pub fn push(&mut self, i: usize, value: f64) {
        if self.stats.len() <= i {
            self.stats.resize_with(i + 1, OnlineStats::new);
        }
        self.stats[i].push(value);
    }

    /// Number of packet indices tracked.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// The accumulated moments of packet index `i`.
    pub fn stat(&self, i: usize) -> &OnlineStats {
        &self.stats[i]
    }

    /// All per-index accumulators.
    pub fn stats(&self) -> &[OnlineStats] {
        &self.stats
    }

    /// Per-index means.
    pub fn means(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.mean()).collect()
    }

    /// Pooled moments of indices `[from, to)` — e.g. the paper's
    /// "steady-state statistics over the last 500 packets" without
    /// holding the pooled sample.
    pub fn pooled_stats(&self, from: usize, to: usize) -> OnlineStats {
        let to = to.min(self.stats.len());
        let mut pooled = OnlineStats::new();
        for s in &self.stats[from..to] {
            pooled.merge(s);
        }
        pooled
    }

    /// Absorb another collection (index-wise [`OnlineStats`] merge).
    pub fn merge(&mut self, other: IndexedStats) {
        if self.stats.len() < other.stats.len() {
            self.stats.resize_with(other.stats.len(), OnlineStats::new);
        }
        for (i, s) in other.stats.iter().enumerate() {
            self.stats[i].merge(s);
        }
    }

    /// The §4.1 transient length against an explicit steady-state mean
    /// (relative tolerance), as in [`IndexedSeries::transient_length`].
    pub fn transient_length(&self, steady_mean: f64, tolerance: f64) -> TransientEstimate {
        transient_length_of_means(&self.means(), steady_mean, tolerance)
    }
}

impl crate::accumulate::Accumulate for IndexedStats {
    fn merge(&mut self, other: Self) {
        IndexedStats::merge(self, other);
    }
}

/// Streaming per-packet-index quantile estimates across replications:
/// one [`P2Quantile`] per index, O(1) memory per index no matter the
/// replication count — the tail-percentile companion of
/// [`IndexedStats`] (e.g. the p95 access delay per probe packet).
///
/// Merging is index-wise [`P2Quantile::merge`] — approximate by nature
/// (P² keeps five markers), but deterministic: under the engine's
/// chunk-ordered reduce the merged estimate is a pure function of the
/// replication set, bit-identical across worker counts.
#[derive(Debug, Clone)]
pub struct IndexedQuantile {
    p: f64,
    est: Vec<P2Quantile>,
}

impl IndexedQuantile {
    /// An empty collection estimating the `p`-quantile per index,
    /// `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p = {p} out of (0,1)");
        IndexedQuantile { p, est: Vec::new() }
    }

    /// The quantile being estimated.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Record a single observation for packet index `i`.
    pub fn push(&mut self, i: usize, value: f64) {
        if self.est.len() <= i {
            let p = self.p;
            self.est.resize_with(i + 1, || P2Quantile::new(p));
        }
        self.est[i].push(value);
    }

    /// Record one replication's trajectory (shorter trajectories are
    /// allowed, as in [`IndexedSeries::push_replication`]).
    pub fn push_replication(&mut self, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            self.push(i, v);
        }
    }

    /// Number of packet indices tracked.
    pub fn len(&self) -> usize {
        self.est.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.est.is_empty()
    }

    /// The estimator of packet index `i`.
    pub fn estimator(&self, i: usize) -> &P2Quantile {
        &self.est[i]
    }

    /// Per-index quantile estimates (NaN for indices with no samples).
    pub fn values(&self) -> Vec<f64> {
        self.est.iter().map(|e| e.value()).collect()
    }

    /// Absorb another collection (index-wise [`P2Quantile`] merge).
    ///
    /// # Panics
    /// If the two collections estimate different quantiles.
    pub fn merge(&mut self, other: IndexedQuantile) {
        assert!(
            (self.p - other.p).abs() < 1e-12,
            "merging IndexedQuantile of different quantiles ({} vs {})",
            self.p,
            other.p
        );
        if self.est.len() < other.est.len() {
            let p = self.p;
            self.est.resize_with(other.est.len(), || P2Quantile::new(p));
        }
        for (i, e) in other.est.into_iter().enumerate() {
            self.est[i].merge(e);
        }
    }
}

impl crate::accumulate::Accumulate for IndexedQuantile {
    /// Approximate (index-wise P² marker merge); deterministic under
    /// the chunk-ordered reduce.
    fn merge(&mut self, other: Self) {
        IndexedQuantile::merge(self, other);
    }
}

/// Transient length from a pre-computed per-index mean profile.
///
/// `tolerance` is relative: index `i` is "converged" when
/// `|mean_i − steady| ≤ tolerance·steady` (for `steady > 0`; indices
/// with non-finite means never converge).
pub fn transient_length_of_means(
    means: &[f64],
    steady_mean: f64,
    tolerance: f64,
) -> TransientEstimate {
    debug_assert!(steady_mean > 0.0, "steady-state mean must be positive");
    transient_length_with(means, steady_mean, tolerance * steady_mean)
}

/// Transient length with an **absolute** tolerance (same unit as the
/// means): index `i` is "converged" when `|mean_i − steady| ≤ tol`.
///
/// The paper's Fig 10 tolerances ("0.1" and "0.01") are best read as
/// absolute milliseconds against millisecond-scale access delays; this
/// variant supports that reading directly.
pub fn transient_length_of_means_abs(
    means: &[f64],
    steady_mean: f64,
    tol_abs: f64,
) -> TransientEstimate {
    transient_length_with(means, steady_mean, tol_abs)
}

fn transient_length_with(means: &[f64], steady_mean: f64, band: f64) -> TransientEstimate {
    let within = |m: f64| m.is_finite() && (m - steady_mean).abs() <= band;
    let first_within = means.iter().position(|&m| within(m));
    // Scan backwards for the sustained point: the first index such that
    // all indices from it onward are within tolerance.
    let mut first_sustained = None;
    for i in (0..means.len()).rev() {
        if within(means[i]) {
            first_sustained = Some(i);
        } else {
            break;
        }
    }
    TransientEstimate {
        first_within,
        first_sustained,
        steady_mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_series(reps: usize, n: usize, steady: f64) -> IndexedSeries {
        // Mean profile: steady * (1 - exp(-i/10)) plus small deterministic
        // wiggle per replication.
        let mut s = IndexedSeries::new();
        for r in 0..reps {
            let wiggle = (r as f64 * 0.37).sin() * 0.01 * steady;
            let traj: Vec<f64> = (0..n)
                .map(|i| steady * (1.0 - (-(i as f64) / 10.0).exp()) + wiggle)
                .collect();
            s.push_replication(&traj);
        }
        s
    }

    #[test]
    fn push_and_index() {
        let mut s = IndexedSeries::new();
        s.push_replication(&[1.0, 2.0, 3.0]);
        s.push_replication(&[2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.sample(0), &[1.0, 2.0]);
        assert_eq!(s.sample(2), &[3.0]);
        let means = s.means();
        assert!((means[0] - 1.5).abs() < 1e-12);
        assert!((means[1] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pooled_combines_ranges() {
        let mut s = IndexedSeries::new();
        s.push_replication(&[1.0, 10.0, 100.0]);
        s.push_replication(&[2.0, 20.0, 200.0]);
        let pool = s.pooled(1, 3);
        assert_eq!(pool.len(), 4);
        assert!((s.pooled_mean(1, 3) - 82.5).abs() < 1e-12);
        // Out-of-range `to` clamps.
        assert_eq!(s.pooled(0, 99).len(), 6);
    }

    #[test]
    fn transient_length_finds_knee() {
        let s = ramp_series(50, 100, 4.0e-3);
        // The profile reaches 90% of steady at i = ceil(10*ln 10) ≈ 23.
        let est = s.transient_length(4.0e-3, 0.1);
        let first = est.first_within.unwrap();
        assert!(
            (20..=26).contains(&first),
            "expected knee near 23, got {first}"
        );
        // Tighter tolerance converges later.
        let tight = s.transient_length(4.0e-3, 0.01);
        assert!(tight.first_within.unwrap() > first);
        // Sustained point is at or after the first crossing.
        assert!(est.first_sustained.unwrap() >= first);
    }

    #[test]
    fn transient_none_when_never_converges() {
        let means = vec![1.0, 1.1, 1.2];
        let est = transient_length_of_means(&means, 10.0, 0.05);
        assert_eq!(est.first_within, None);
        assert_eq!(est.first_sustained, None);
    }

    #[test]
    fn sustained_ignores_early_lucky_crossing() {
        // Index 1 dips within tolerance then leaves again.
        let means = vec![0.5, 1.0, 0.5, 0.98, 1.01, 0.99];
        let est = transient_length_of_means(&means, 1.0, 0.05);
        assert_eq!(est.first_within, Some(1));
        assert_eq!(est.first_sustained, Some(3));
    }

    #[test]
    fn merge_equals_sequential_pushes() {
        let trajs: Vec<Vec<f64>> = (0..40)
            .map(|r| (0..7).map(|i| (r * 7 + i) as f64).collect())
            .collect();
        let mut whole = IndexedSeries::new();
        for t in &trajs {
            whole.push_replication(t);
        }
        let mut a = IndexedSeries::new();
        let mut b = IndexedSeries::new();
        for t in &trajs[..23] {
            a.push_replication(t);
        }
        for t in &trajs[23..] {
            b.push_replication(t);
        }
        a.merge(b);
        assert_eq!(a.len(), whole.len());
        for i in 0..whole.len() {
            assert_eq!(a.sample(i), whole.sample(i), "index {i}");
        }
    }

    #[test]
    fn cap_bounds_memory_deterministically() {
        let mut s = IndexedSeries::with_cap(8);
        for r in 0..100 {
            s.push_replication(&[r as f64, (r * 2) as f64]);
        }
        assert!(s.sample(0).len() <= 8);
        assert!(s.sample(1).len() <= 8);
        // Deterministic: the same pushes give the same retained set.
        let mut t = IndexedSeries::with_cap(8);
        for r in 0..100 {
            t.push_replication(&[r as f64, (r * 2) as f64]);
        }
        assert_eq!(s.sample(0), t.sample(0));
        // Retained samples are a subset of what was pushed.
        assert!(s.sample(0).iter().all(|&x| x.fract() == 0.0 && x < 100.0));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cap_rejected() {
        IndexedSeries::with_cap(0);
    }

    #[test]
    fn indexed_stats_matches_indexed_series_means() {
        let trajs: Vec<Vec<f64>> = (0..30)
            .map(|r| (0..5).map(|i| ((r + 1) * (i + 2)) as f64).collect())
            .collect();
        let mut series = IndexedSeries::new();
        let mut stats = IndexedStats::new();
        for t in &trajs {
            series.push_replication(t);
            stats.push_replication(t);
        }
        let a = series.means();
        let b = stats.means();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
        // Pooled stats over a range match the pooled-sample mean.
        let pooled = stats.pooled_stats(2, 5);
        assert!((pooled.mean() - series.pooled_mean(2, 5)).abs() < 1e-9);
        assert_eq!(pooled.count(), 3 * 30);
    }

    #[test]
    fn indexed_stats_merge_is_exact_up_to_rounding() {
        let trajs: Vec<Vec<f64>> = (0..50)
            .map(|r| {
                (0..4)
                    .map(|i| ((r as f64) * 0.37 + i as f64).sin())
                    .collect()
            })
            .collect();
        let mut whole = IndexedStats::new();
        for t in &trajs {
            whole.push_replication(t);
        }
        let mut a = IndexedStats::new();
        let mut b = IndexedStats::new();
        for t in &trajs[..31] {
            a.push_replication(t);
        }
        for t in &trajs[31..] {
            b.push_replication(t);
        }
        a.merge(b);
        for i in 0..4 {
            assert_eq!(a.stat(i).count(), whole.stat(i).count());
            assert!((a.stat(i).mean() - whole.stat(i).mean()).abs() < 1e-12);
            assert!((a.stat(i).variance() - whole.stat(i).variance()).abs() < 1e-9);
        }
    }

    #[test]
    fn indexed_quantile_tracks_per_index_p95() {
        let mut q = IndexedQuantile::new(0.95);
        // Index 0: uniform 0..100; index 1: uniform 0..200.
        for r in 0..500 {
            let u = (r as f64 * 0.618_033_988_749_895).fract();
            q.push_replication(&[u * 100.0, u * 200.0]);
        }
        assert_eq!(q.len(), 2);
        let v = q.values();
        assert!(
            (v[0] - 95.0).abs() < 5.0,
            "p95 of U[0,100] ≈ 95, got {}",
            v[0]
        );
        assert!(
            (v[1] - 190.0).abs() < 10.0,
            "p95 of U[0,200] ≈ 190, got {}",
            v[1]
        );
    }

    #[test]
    fn indexed_quantile_merge_close_to_sequential() {
        let obs: Vec<f64> = (0..400)
            .map(|r| ((r as f64 * 0.37).sin() + 1.5) * 3.0)
            .collect();
        let mut whole = IndexedQuantile::new(0.95);
        let mut a = IndexedQuantile::new(0.95);
        let mut b = IndexedQuantile::new(0.95);
        for (r, &x) in obs.iter().enumerate() {
            whole.push(0, x);
            if r < 170 {
                a.push(0, x);
            } else {
                b.push(0, x);
            }
        }
        a.merge(b);
        assert_eq!(a.estimator(0).count(), whole.estimator(0).count());
        let (va, vw) = (a.values()[0], whole.values()[0]);
        assert!((va - vw).abs() / vw < 0.1, "merged {va} vs sequential {vw}");
        // Determinism: the same split merges to the same bits.
        let mut a2 = IndexedQuantile::new(0.95);
        let mut b2 = IndexedQuantile::new(0.95);
        for (r, &x) in obs.iter().enumerate() {
            if r < 170 {
                a2.push(0, x);
            } else {
                b2.push(0, x);
            }
        }
        a2.merge(b2);
        assert_eq!(a.values()[0].to_bits(), a2.values()[0].to_bits());
    }

    #[test]
    #[should_panic(expected = "different quantiles")]
    fn indexed_quantile_merge_rejects_mismatched_p() {
        let mut a = IndexedQuantile::new(0.95);
        a.merge(IndexedQuantile::new(0.5));
    }

    #[test]
    fn ks_profile_detects_transient() {
        // Index 0 from a shifted distribution, later indices match the
        // reference.
        let mut s = IndexedSeries::new();
        let mut state = 7u64;
        let mut unif = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..300 {
            let traj = vec![unif() * 0.3, unif(), unif()];
            s.push_replication(&traj);
        }
        let reference: Vec<f64> = (0..1000).map(|_| unif()).collect();
        let prof = s.ks_profile(&reference, 0.05);
        assert!(prof[0].reject, "index 0 should differ");
        assert!(!prof[2].reject, "index 2 should match");
    }
}
