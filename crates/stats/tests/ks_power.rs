//! Decimation vs KS power — the quantification behind the dense-path
//! reservoir cap (`DENSE_SAMPLE_CAP`, 25 000) of the scenario engine.
//!
//! The dense experiment path (Figs 7–9) caps the raw samples retained
//! per packet index and decimates by halving beyond the cap; the
//! steady-state **reference pool** the per-index KS tests compare
//! against is built from those capped samples. Decimating the pool
//! costs statistical power. The `#[ignore]`d test below measures that
//! cost: it runs many synthetic transient-vs-steady KS comparisons at
//! pool caps {5 000, 25 000, uncapped} and reports
//!
//! * **power** — the rejection rate when the per-index sample really is
//!   shifted (a 15 % mean shift, comparable to a mid-transient index),
//! * **size** — the false-rejection rate when it is not.
//!
//! Run it with:
//!
//! ```text
//! cargo test --release -p csmaprobe-stats --test ks_power -- --ignored --nocapture
//! ```
//!
//! Measured output (600-sample indices, 80 000-sample pool, 200 trials
//! — see README "Statistical fidelity" for the conclusions this pins):
//!
//! ```text
//! cap      1000: power 0.610, size 0.030
//! cap      5000: power 0.825, size 0.040
//! cap     25000: power 0.840, size 0.075
//! cap  uncapped: power 0.845, size 0.055
//! ```
//!
//! i.e. the default 25 000 cap is statistically free, 5 000 costs ~2
//! percentage points, and caps near the per-index sample size (1 000 ≈
//! 1.7 × 600) collapse the power — the pool must stay an order of
//! magnitude larger than the per-index samples it is compared against.
//!
//! The always-on companion test checks the test size only on a small
//! budget, so CI guards the machinery without paying the statistical
//! runtime.

use csmaprobe_stats::ks::two_sample_ks;

/// SplitMix64 — self-contained so this test exercises only the stats
/// crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
    /// Exponential with the given mean — access delays are
    /// exponential-ish under Poisson contention.
    fn exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.f64()).ln()
    }
}

/// The dense path's deterministic decimation: keep every other sample
/// until within `cap` (mirrors `IndexedSeries::with_cap`).
fn decimate_to_cap(v: &mut Vec<f64>, cap: usize) {
    while v.len() > cap {
        let mut keep = 0;
        for i in (0..v.len()).step_by(2) {
            v[keep] = v[i];
            keep += 1;
        }
        v.truncate(keep);
    }
}

/// Rejection rate over `trials` KS tests of a fresh `n_sample`-sized
/// sample (mean `sample_mean`) against a `pool`-sized steady reference
/// (mean 1.0) decimated to `cap`.
fn rejection_rate(
    trials: usize,
    n_sample: usize,
    sample_mean: f64,
    pool: usize,
    cap: usize,
    seed: u64,
) -> f64 {
    let mut rejects = 0usize;
    for t in 0..trials {
        let mut rng = Rng(seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
        let mut reference: Vec<f64> = (0..pool).map(|_| rng.exp(1.0)).collect();
        decimate_to_cap(&mut reference, cap);
        let sample: Vec<f64> = (0..n_sample).map(|_| rng.exp(sample_mean)).collect();
        if two_sample_ks(&sample, &reference, 0.05).reject {
            rejects += 1;
        }
    }
    rejects as f64 / trials as f64
}

/// The full quantification (statistical, ~10 s in release): measures
/// power and size at the caps the engine exposes and asserts the
/// documented recommendation — 25 000 loses < 3 percentage points of
/// power against a 15 % shift, 5 000 loses < 5, while a pool near the
/// per-index sample size collapses — stays true.
#[test]
#[ignore = "statistical power measurement; run with --ignored --nocapture to requantify"]
fn ks_power_vs_reference_pool_cap() {
    // Fig 7–9 shape at scale 1: per-index samples of ~600 replications
    // against a pool of last_k × reps ≈ 80 000 steady observations.
    const TRIALS: usize = 200;
    const N_SAMPLE: usize = 600;
    const POOL: usize = 80_000;
    const SHIFT: f64 = 0.85; // 15 % mean shift, a mid-transient index
    let caps = [1_000usize, 5_000, 25_000, usize::MAX];

    let mut powers = Vec::new();
    for &cap in &caps {
        let power = rejection_rate(TRIALS, N_SAMPLE, SHIFT, POOL, cap, 0xCA11);
        let size = rejection_rate(TRIALS, N_SAMPLE, 1.0, POOL, cap, 0x512E);
        println!(
            "cap {:>9}: power {power:.3}, size {size:.3}",
            if cap == usize::MAX {
                "uncapped".to_string()
            } else {
                cap.to_string()
            }
        );
        // The nominal 5 % significance level must roughly hold
        // regardless of cap (finite-sample + interpolation slack).
        assert!(size < 0.12, "size {size} at cap {cap}");
        powers.push(power);
    }
    let [p1k, p5k, p25k, pfull] = powers[..] else {
        unreachable!()
    };
    // The uncapped test has real power against a 15 % shift…
    assert!(pfull > 0.7, "uncapped power only {pfull}");
    // …the engine's default cap is statistically free, 5 000 nearly so…
    assert!(
        p25k >= pfull - 0.03,
        "25k pool lost too much: {p25k} vs {pfull}"
    );
    assert!(
        p5k >= pfull - 0.05,
        "5k pool lost too much: {p5k} vs {pfull}"
    );
    // …and a pool near the per-index sample size visibly collapses.
    assert!(p1k < pfull - 0.10, "1k pool should hurt: {p1k} vs {pfull}");
}

/// Cheap always-on guard: with an order-of-magnitude smaller budget,
/// heavier decimation never *gains* rejection power on identical
/// distributions (the size never blows up), and the machinery agrees
/// with the documented monotone trend.
#[test]
fn decimated_reference_keeps_test_size() {
    for &cap in &[500usize, 2_000, usize::MAX] {
        let size = rejection_rate(40, 300, 1.0, 8_000, cap, 0xBEEF);
        assert!(size <= 0.2, "false-rejection rate {size} at cap {cap}");
    }
}

/// Always-on, scaled-down leg of the full power quantification above
/// (seeded, well under 2 s even in debug): the KS machinery must keep
/// real power against a 20 % shift with an uncapped pool, and a pool
/// decimated to near the per-index sample size must visibly lose
/// power. This pins the *shape* of the `#[ignore]`d measurement in
/// every CI run; the big leg stays for requantification.
#[test]
fn ks_power_scaled_down_leg() {
    const TRIALS: usize = 50;
    const N_SAMPLE: usize = 400;
    const POOL: usize = 16_000;
    const SHIFT: f64 = 0.80; // 20 % mean shift: detectable at this budget

    let p_full = rejection_rate(TRIALS, N_SAMPLE, SHIFT, POOL, usize::MAX, 0xCA11);
    let p_tiny = rejection_rate(TRIALS, N_SAMPLE, SHIFT, POOL, 600, 0xCA11);
    let size = rejection_rate(TRIALS, N_SAMPLE, 1.0, POOL, usize::MAX, 0x512E);

    // Real power uncapped, nominal size held, collapse when the pool
    // shrinks to the per-index sample scale — the documented trend.
    assert!(p_full > 0.8, "uncapped power only {p_full}");
    assert!(size < 0.15, "size {size} blew past the nominal level");
    assert!(
        p_tiny < p_full - 0.15,
        "near-sample-size pool should collapse: {p_tiny} vs {p_full}"
    );
}
