//! # csmaprobe-queueing
//!
//! FIFO queueing substrate — the wired half of the paper's link model
//! (Fig 3) and the replacement for its Matlab trace-driven queueing
//! simulator (appendix A: "convolves a series of packet arrivals with a
//! series of service times").
//!
//! * [`fifo`] — exact Lindley-recursion service of a time-ordered job
//!   trace, with per-job start/departure records and queue-length
//!   observation.
//! * [`workload`] — the sample-path processes of §5.1.4: hop workload
//!   `W(t)`, utilisation `U(t)` and its window averages
//!   `u_fifo(t, t+τ)`, offered workload `X(t)` and `Y(t, t+τ)`.
//! * [`trace_sim`] — the Matlab-simulator equivalent: convolve probe
//!   arrivals, FIFO cross-traffic, and a per-packet service-time
//!   process (e.g. empirical access delays) into departures, queue
//!   lengths, and output dispersions.
//! * [`analytic`] — M/M/1 and M/D/1 closed forms used to validate the
//!   queue against theory.

pub mod analytic;
pub mod fifo;
pub mod trace_sim;
pub mod workload;

pub use fifo::{fifo_serve, Job, Served};
pub use trace_sim::{FlowTag, TaggedJob, TraceOutcome};
pub use workload::{BusyIntervals, WorkloadProcess};
