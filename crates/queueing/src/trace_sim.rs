//! The Matlab-style trace-driven queueing simulator (appendix A).
//!
//! "The queuing simulator convolves a series of packet arrivals with a
//! series of service times in order to measure several metrics such as
//! the queuing length distribution and the output dispersion
//! (inter-arrival) of packets."
//!
//! [`simulate`] merges a probe arrival sequence with FIFO cross-traffic
//! into one time-ordered job trace, serves it through the Lindley
//! queue, and reports per-flow schedules. The per-packet service time is
//! supplied by a caller-provided process (closure), so empirical access
//! delay distributions measured on the MAC simulator can be plugged in
//! directly — exactly how the paper parameterised its Matlab model from
//! testbed measurements.

use crate::fifo::{fifo_serve, queue_len_at_arrivals, Job, Served};
use csmaprobe_desim::time::{Dur, Time};

/// Which flow a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTag {
    /// Active measurement traffic.
    Probe,
    /// FIFO cross-traffic sharing the transmission queue.
    Cross,
}

/// A job with its flow tag (before service-time assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedJob {
    /// Arrival instant at the shared queue.
    pub arrival: Time,
    /// Flow this packet belongs to.
    pub tag: FlowTag,
    /// Payload size (bytes) — available to the service process.
    pub bytes: u32,
}

/// Result of a trace-driven run.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    /// Schedule of every job, in arrival order.
    pub served: Vec<Served>,
    /// Tags aligned with `served`.
    pub tags: Vec<FlowTag>,
    /// Queue length (excluding self) each job found on arrival.
    pub queue_len: Vec<usize>,
}

impl TraceOutcome {
    /// The schedules of probe packets only, in order.
    pub fn probe_served(&self) -> Vec<Served> {
        self.served
            .iter()
            .zip(&self.tags)
            .filter(|(_, t)| **t == FlowTag::Probe)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Output gap of the probe flow per eq. (16):
    /// `gO = (d_n − d_1)/(n−1)`. `None` with fewer than 2 probe packets.
    pub fn probe_output_gap(&self) -> Option<Dur> {
        let probes = self.probe_served();
        if probes.len() < 2 {
            return None;
        }
        let first = probes.first().unwrap().depart;
        let last = probes.last().unwrap().depart;
        Some((last - first) / (probes.len() as u64 - 1))
    }

    /// Per-probe-packet inter-departure gaps (receiver inter-arrivals),
    /// length `n−1`.
    pub fn probe_gaps(&self) -> Vec<Dur> {
        let probes = self.probe_served();
        probes
            .windows(2)
            .map(|w| w[1].depart - w[0].depart)
            .collect()
    }
}

/// Serve a merged probe + cross trace through one FIFO queue.
///
/// * `jobs` — the merged, **time-ordered** arrival sequence.
/// * `service` — called once per job in service order with
///   `(index, &TaggedJob)`; returns that packet's service time. This is
///   where a constant-rate wire (`bytes·8/C`) or an empirical
///   access-delay sample goes.
pub fn simulate<F>(jobs: &[TaggedJob], mut service: F) -> TraceOutcome
where
    F: FnMut(usize, &TaggedJob) -> Dur,
{
    let plain: Vec<Job> = jobs
        .iter()
        .enumerate()
        .map(|(i, tj)| Job {
            arrival: tj.arrival,
            service: service(i, tj),
        })
        .collect();
    let served = fifo_serve(&plain);
    let queue_len = queue_len_at_arrivals(&served);
    TraceOutcome {
        served,
        tags: jobs.iter().map(|tj| tj.tag).collect(),
        queue_len,
    }
}

/// Merge two time-ordered arrival sequences into one (stable: ties keep
/// the first sequence's packets first).
pub fn merge_arrivals(a: &[TaggedJob], b: &[TaggedJob]) -> Vec<TaggedJob> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut k) = (0, 0);
    while i < a.len() && k < b.len() {
        if a[i].arrival <= b[k].arrival {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[k]);
            k += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[k..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(a_us: u64) -> TaggedJob {
        TaggedJob {
            arrival: Time::from_micros(a_us),
            tag: FlowTag::Probe,
            bytes: 1500,
        }
    }

    fn cross(a_us: u64) -> TaggedJob {
        TaggedJob {
            arrival: Time::from_micros(a_us),
            tag: FlowTag::Cross,
            bytes: 1500,
        }
    }

    #[test]
    fn constant_service_dispersion_equals_service() {
        // Back-to-back probes through a constant-rate server: output gap
        // equals the service time (the classic packet-pair result).
        let jobs = vec![probe(0), probe(0), probe(0)];
        let out = simulate(&jobs, |_, _| Dur::from_micros(100));
        assert_eq!(out.probe_output_gap(), Some(Dur::from_micros(100)));
        assert_eq!(out.probe_gaps(), vec![Dur::from_micros(100); 2]);
    }

    #[test]
    fn cross_traffic_inflates_dispersion() {
        // A cross packet lands between two probes: the probe gap grows
        // by its service time.
        let merged = merge_arrivals(&[probe(0), probe(10)], &[cross(5)]);
        assert_eq!(merged.len(), 3);
        let out = simulate(&merged, |_, _| Dur::from_micros(50));
        // probe1 departs at 50; cross at 100; probe2 at 150.
        assert_eq!(out.probe_output_gap(), Some(Dur::from_micros(100)));
    }

    #[test]
    fn queue_len_reported() {
        let jobs = vec![probe(0), probe(0), cross(0)];
        let out = simulate(&jobs, |_, _| Dur::from_micros(10));
        assert_eq!(out.queue_len, vec![0, 1, 2]);
    }

    #[test]
    fn per_flow_extraction() {
        let merged = merge_arrivals(&[probe(0), probe(20)], &[cross(10), cross(30)]);
        let out = simulate(&merged, |_, _| Dur::from_micros(1));
        assert_eq!(out.probe_served().len(), 2);
        assert_eq!(out.tags.iter().filter(|t| **t == FlowTag::Cross).count(), 2);
    }

    #[test]
    fn service_closure_sees_index_and_job() {
        let jobs = vec![probe(0), cross(1)];
        let mut seen = Vec::new();
        let _ = simulate(&jobs, |i, tj| {
            seen.push((i, tj.tag));
            Dur::from_micros(1)
        });
        assert_eq!(seen, vec![(0, FlowTag::Probe), (1, FlowTag::Cross)]);
    }

    #[test]
    fn merge_is_stable_and_ordered() {
        let a = vec![probe(0), probe(10)];
        let b = vec![cross(0), cross(5)];
        let m = merge_arrivals(&a, &b);
        assert_eq!(m[0].tag, FlowTag::Probe); // tie -> first sequence first
        assert_eq!(m[1].tag, FlowTag::Cross);
        for w in m.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }

    #[test]
    fn single_probe_has_no_dispersion() {
        let out = simulate(&[probe(0)], |_, _| Dur::from_micros(1));
        assert_eq!(out.probe_output_gap(), None);
        assert!(out.probe_gaps().is_empty());
    }
}
