//! Sample-path processes of §5.1.4.
//!
//! From a cross-traffic job trace this module derives:
//!
//! * the **hop workload** `W(t)` — unfinished cross-traffic work at `t`
//!   ([`WorkloadProcess::eval`]);
//! * the **utilisation** `U(t) ∈ {0,1}` and its window averages
//!   `u_fifo(t, t+τ)` ([`BusyIntervals::utilisation`]);
//! * the **offered workload** `X(t)` — cumulative service time of
//!   cross-traffic arrived by `t` — and the averaging function
//!   `Y(t, t+τ) = (X(t+τ) − X(t))/τ` ([`WorkloadProcess::offered`],
//!   [`WorkloadProcess::offered_rate`]).

use crate::fifo::{fifo_serve, Job};
use csmaprobe_desim::time::{Dur, Time};

/// Piecewise-linear hop-workload process `W(t)` built from a job trace.
///
/// Between arrivals the workload drains at unit rate (the server works
/// whenever work exists); at each arrival it jumps up by the job's
/// service time. Evaluation is `O(log n)`.
#[derive(Debug, Clone)]
pub struct WorkloadProcess {
    /// (arrival instant, workload immediately after the arrival).
    points: Vec<(Time, Dur)>,
    /// Cumulative offered service time after each arrival.
    offered: Vec<Dur>,
}

impl WorkloadProcess {
    /// Build from a time-ordered job trace.
    pub fn from_jobs(jobs: &[Job]) -> Self {
        let mut points = Vec::with_capacity(jobs.len());
        let mut offered = Vec::with_capacity(jobs.len());
        let mut w = Dur::ZERO;
        let mut x = Dur::ZERO;
        let mut prev = Time::ZERO;
        for job in jobs {
            assert!(job.arrival >= prev, "jobs must be time-ordered");
            w = w.saturating_sub(job.arrival - prev);
            w += job.service;
            x += job.service;
            points.push((job.arrival, w));
            offered.push(x);
            prev = job.arrival;
        }
        WorkloadProcess { points, offered }
    }

    /// `W(t)`: unfinished work at time `t` (right-continuous: includes
    /// a job arriving exactly at `t`).
    pub fn eval(&self, t: Time) -> Dur {
        // Find the last arrival <= t.
        let idx = self.points.partition_point(|&(a, _)| a <= t);
        if idx == 0 {
            return Dur::ZERO;
        }
        let (a, w) = self.points[idx - 1];
        w.saturating_sub(t - a)
    }

    /// `W(t⁻)`: unfinished work just before `t` (excludes a job arriving
    /// exactly at `t`) — the quantity probing packets observe in
    /// eq. (13).
    pub fn eval_left(&self, t: Time) -> Dur {
        let idx = self.points.partition_point(|&(a, _)| a < t);
        if idx == 0 {
            return Dur::ZERO;
        }
        let (a, w) = self.points[idx - 1];
        w.saturating_sub(t - a)
    }

    /// `X(t)`: cumulative service time of jobs arrived **at or before**
    /// `t` (the paper's offered workload).
    pub fn offered(&self, t: Time) -> Dur {
        let idx = self.points.partition_point(|&(a, _)| a <= t);
        if idx == 0 {
            Dur::ZERO
        } else {
            self.offered[idx - 1]
        }
    }

    /// `Y(t, t+τ) = (X(t+τ) − X(t)) / τ`: the offered-rate averaging
    /// function of eq. (10), dimensionless (service seconds per second).
    pub fn offered_rate(&self, t: Time, tau: Dur) -> f64 {
        assert!(tau > Dur::ZERO, "window must be positive");
        let dx = self.offered(t + tau) - self.offered(t);
        dx.as_secs_f64() / tau.as_secs_f64()
    }

    /// Long-run average offered rate over `[0, horizon]` — the
    /// estimator of `u¯_fifo` under stability (eq. 11).
    pub fn mean_offered_rate(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.offered(horizon).as_secs_f64() / horizon.as_secs_f64()
    }
}

/// The busy/idle structure of a served trace, supporting `O(log n)`
/// window-utilisation queries `u(t, t+τ)`.
#[derive(Debug, Clone)]
pub struct BusyIntervals {
    /// Disjoint, sorted `[start, end)` busy intervals.
    intervals: Vec<(Time, Time)>,
    /// Prefix sums of interval lengths (ns), aligned with `intervals`.
    prefix: Vec<u64>,
}

impl BusyIntervals {
    /// Merge the service intervals of a served FIFO trace into maximal
    /// busy periods.
    pub fn from_served(served: &[crate::fifo::Served]) -> Self {
        let mut intervals: Vec<(Time, Time)> = Vec::new();
        for s in served {
            match intervals.last_mut() {
                Some((_, end)) if *end >= s.start => {
                    // Contiguous or overlapping: extend the busy period.
                    *end = (*end).max(s.depart);
                }
                _ => intervals.push((s.start, s.depart)),
            }
        }
        let mut prefix = Vec::with_capacity(intervals.len());
        let mut acc = 0u64;
        for &(a, b) in &intervals {
            acc += (b - a).as_nanos();
            prefix.push(acc);
        }
        BusyIntervals { intervals, prefix }
    }

    /// Convenience: serve `jobs` and build the busy structure.
    pub fn from_jobs(jobs: &[Job]) -> Self {
        Self::from_served(&fifo_serve(jobs))
    }

    /// Total busy time in `[0, t)`.
    pub fn busy_until(&self, t: Time) -> Dur {
        // Find the intervals entirely before t, plus a partial overlap.
        let idx = self.intervals.partition_point(|&(_, end)| end <= t);
        let mut ns = if idx == 0 { 0 } else { self.prefix[idx - 1] };
        if idx < self.intervals.len() {
            let (a, _) = self.intervals[idx];
            if a < t {
                ns += (t - a).as_nanos();
            }
        }
        Dur::from_nanos(ns)
    }

    /// `u(t, t+τ)`: fraction of `[t, t+τ)` during which the server is
    /// busy (eq. 9).
    pub fn utilisation(&self, t: Time, tau: Dur) -> f64 {
        assert!(tau > Dur::ZERO, "window must be positive");
        let busy = self.busy_until(t + tau) - self.busy_until(t);
        busy.as_secs_f64() / tau.as_secs_f64()
    }

    /// Long-run utilisation over `[0, horizon)` — `u¯_fifo` (eq. 8).
    pub fn mean_utilisation(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.busy_until(horizon).as_secs_f64() / horizon.as_secs_f64()
    }

    /// The merged busy periods.
    pub fn intervals(&self) -> &[(Time, Time)] {
        &self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(a_us: u64, s_us: u64) -> Job {
        Job {
            arrival: Time::from_micros(a_us),
            service: Dur::from_micros(s_us),
        }
    }

    #[test]
    fn workload_drains_at_unit_rate() {
        let wp = WorkloadProcess::from_jobs(&[j(10, 20)]);
        assert_eq!(wp.eval(Time::from_micros(5)), Dur::ZERO);
        assert_eq!(wp.eval(Time::from_micros(10)), Dur::from_micros(20));
        assert_eq!(wp.eval(Time::from_micros(20)), Dur::from_micros(10));
        assert_eq!(wp.eval(Time::from_micros(30)), Dur::ZERO);
        assert_eq!(wp.eval(Time::from_micros(99)), Dur::ZERO);
    }

    #[test]
    fn left_limit_excludes_simultaneous_arrival() {
        let wp = WorkloadProcess::from_jobs(&[j(10, 20)]);
        assert_eq!(wp.eval_left(Time::from_micros(10)), Dur::ZERO);
        assert_eq!(wp.eval(Time::from_micros(10)), Dur::from_micros(20));
    }

    #[test]
    fn workload_accumulates_in_bursts() {
        let wp = WorkloadProcess::from_jobs(&[j(0, 10), j(5, 10)]);
        // At t=5: 5 of the first job remain, plus 10 new.
        assert_eq!(wp.eval(Time::from_micros(5)), Dur::from_micros(15));
        assert_eq!(wp.eval(Time::from_micros(20)), Dur::ZERO);
    }

    #[test]
    fn offered_workload_is_cumulative() {
        let wp = WorkloadProcess::from_jobs(&[j(0, 10), j(5, 10), j(100, 5)]);
        assert_eq!(wp.offered(Time::from_micros(0)), Dur::from_micros(10));
        assert_eq!(wp.offered(Time::from_micros(7)), Dur::from_micros(20));
        assert_eq!(wp.offered(Time::from_micros(500)), Dur::from_micros(25));
        // Y(0, 100us) counts arrivals in (0, 100us]: the 10us job at t=5
        // and the 5us job at t=100 -> 15us/100us = 0.15.
        assert!((wp.offered_rate(Time::ZERO, Dur::from_micros(100)) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn mean_offered_rate_estimates_utilisation() {
        // 10us of service every 100us -> 10% offered.
        let jobs: Vec<Job> = (0..100).map(|i| j(i * 100, 10)).collect();
        let wp = WorkloadProcess::from_jobs(&jobs);
        let u = wp.mean_offered_rate(Time::from_micros(100 * 100));
        assert!((u - 0.1).abs() < 0.01, "{u}");
    }

    #[test]
    fn busy_intervals_merge_contiguous_service() {
        let b = BusyIntervals::from_jobs(&[j(0, 10), j(5, 10), j(50, 5)]);
        assert_eq!(
            b.intervals(),
            &[
                (Time::from_micros(0), Time::from_micros(20)),
                (Time::from_micros(50), Time::from_micros(55)),
            ]
        );
    }

    #[test]
    fn window_utilisation() {
        let b = BusyIntervals::from_jobs(&[j(0, 10), j(50, 10)]);
        // [0, 20): busy 10 of 20.
        assert!((b.utilisation(Time::ZERO, Dur::from_micros(20)) - 0.5).abs() < 1e-12);
        // [5, 55): busy 5 + 5 = 10 of 50.
        assert!((b.utilisation(Time::from_micros(5), Dur::from_micros(50)) - 0.2).abs() < 1e-12);
        // Fully idle window.
        assert_eq!(
            b.utilisation(Time::from_micros(20), Dur::from_micros(10)),
            0.0
        );
        // Fully busy window.
        assert_eq!(
            b.utilisation(Time::from_micros(2), Dur::from_micros(5)),
            1.0
        );
    }

    #[test]
    fn mean_utilisation_long_run() {
        let jobs: Vec<Job> = (0..1000).map(|i| j(i * 50, 25)).collect();
        let b = BusyIntervals::from_jobs(&jobs);
        let u = b.mean_utilisation(Time::from_micros(1000 * 50));
        assert!((u - 0.5).abs() < 1e-3, "{u}");
    }

    #[test]
    fn busy_until_handles_edges() {
        let b = BusyIntervals::from_jobs(&[j(10, 10)]);
        assert_eq!(b.busy_until(Time::from_micros(10)), Dur::ZERO);
        assert_eq!(b.busy_until(Time::from_micros(15)), Dur::from_micros(5));
        assert_eq!(b.busy_until(Time::from_micros(20)), Dur::from_micros(10));
        assert_eq!(b.busy_until(Time::from_micros(100)), Dur::from_micros(10));
    }

    #[test]
    fn empty_trace_zero_everything() {
        let wp = WorkloadProcess::from_jobs(&[]);
        assert_eq!(wp.eval(Time::from_micros(5)), Dur::ZERO);
        assert_eq!(wp.offered(Time::from_micros(5)), Dur::ZERO);
        let b = BusyIntervals::from_jobs(&[]);
        assert_eq!(b.busy_until(Time::from_micros(5)), Dur::ZERO);
    }
}
