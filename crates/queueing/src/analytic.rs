//! Closed-form queueing results used to validate the FIFO substrate and
//! the steady-state rate-response models.
//!
//! All formulas are the textbook M/M/1, M/D/1 and Pollaczek–Khinchine
//! results for a single-server FIFO queue with Poisson arrivals.

/// Mean waiting time (time in queue, excluding service) of an M/M/1
/// queue with arrival rate `lambda` and service rate `mu` (jobs/s).
///
/// `Wq = ρ / (μ − λ)` for `ρ = λ/μ < 1`; returns `f64::INFINITY` for an
/// unstable queue.
pub fn mm1_mean_wait(lambda: f64, mu: f64) -> f64 {
    debug_assert!(lambda >= 0.0 && mu > 0.0);
    let rho = lambda / mu;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    rho / (mu - lambda)
}

/// Mean number in system for M/M/1: `L = ρ/(1−ρ)`.
pub fn mm1_mean_in_system(lambda: f64, mu: f64) -> f64 {
    let rho = lambda / mu;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    rho / (1.0 - rho)
}

/// Mean waiting time of an M/D/1 queue (deterministic service `s`
/// seconds, Poisson arrivals at `lambda`/s):
/// `Wq = ρ·s / (2(1−ρ))`.
pub fn md1_mean_wait(lambda: f64, service_s: f64) -> f64 {
    debug_assert!(lambda >= 0.0 && service_s > 0.0);
    let rho = lambda * service_s;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    rho * service_s / (2.0 * (1.0 - rho))
}

/// Pollaczek–Khinchine mean wait for M/G/1 with service mean `es` and
/// second moment `es2` (seconds, seconds²):
/// `Wq = λ·E[S²] / (2(1−ρ))`.
pub fn mg1_mean_wait(lambda: f64, es: f64, es2: f64) -> f64 {
    debug_assert!(lambda >= 0.0 && es > 0.0 && es2 >= es * es);
    let rho = lambda * es;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    lambda * es2 / (2.0 * (1.0 - rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_matches_known_values() {
        // λ=0.5, μ=1: Wq = 0.5/(1-0.5)/1 = 1.0
        assert!((mm1_mean_wait(0.5, 1.0) - 1.0).abs() < 1e-12);
        assert!((mm1_mean_in_system(0.5, 1.0) - 1.0).abs() < 1e-12);
        assert!(mm1_mean_wait(2.0, 1.0).is_infinite());
    }

    #[test]
    fn md1_is_half_of_mm1_wait() {
        // At equal ρ, M/D/1 waits are half the M/M/1 waits.
        let lambda = 0.6;
        let mu = 1.0;
        let wq_mm1 = mm1_mean_wait(lambda, mu);
        let wq_md1 = md1_mean_wait(lambda, 1.0 / mu);
        assert!((wq_md1 - wq_mm1 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn pk_reduces_to_mm1_and_md1() {
        let lambda = 0.4;
        let s = 1.0;
        // Exponential service: E[S²] = 2s².
        assert!(
            (mg1_mean_wait(lambda, s, 2.0 * s * s) - mm1_mean_wait(lambda, 1.0 / s)).abs() < 1e-12
        );
        // Deterministic service: E[S²] = s².
        assert!((mg1_mean_wait(lambda, s, s * s) - md1_mean_wait(lambda, s)).abs() < 1e-12);
    }

    #[test]
    fn unstable_queues_report_infinity() {
        assert!(md1_mean_wait(2.0, 1.0).is_infinite());
        assert!(mg1_mean_wait(1.5, 1.0, 1.0).is_infinite());
    }
}
