//! Exact FIFO (single-server, work-conserving) service of a job trace
//! via the Lindley recursion.

use csmaprobe_desim::time::{Dur, Time};

/// A unit of work offered to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Arrival instant at the queue.
    pub arrival: Time,
    /// Service requirement (time the server is held once the job
    /// reaches the head).
    pub service: Dur,
}

/// A served job with its schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// Arrival instant.
    pub arrival: Time,
    /// Instant service began (head of queue reached AND server free).
    pub start: Time,
    /// Departure (service completion) instant.
    pub depart: Time,
}

impl Served {
    /// Time spent waiting before service.
    #[inline]
    pub fn wait(&self) -> Dur {
        self.start - self.arrival
    }

    /// Total sojourn time (wait + service).
    #[inline]
    pub fn sojourn(&self) -> Dur {
        self.depart - self.arrival
    }

    /// Service duration.
    #[inline]
    pub fn service(&self) -> Dur {
        self.depart - self.start
    }
}

/// Serve `jobs` (which must be sorted by arrival time) through a single
/// FIFO server. Pure Lindley recursion:
///
/// ```text
/// start_i  = max(arrival_i, depart_{i−1})
/// depart_i = start_i + service_i
/// ```
///
/// Panics if arrivals are out of order.
///
/// ```
/// use csmaprobe_queueing::fifo::{fifo_serve, Job};
/// use csmaprobe_desim::time::{Dur, Time};
///
/// let jobs = vec![
///     Job { arrival: Time::ZERO, service: Dur::from_micros(10) },
///     Job { arrival: Time::from_micros(4), service: Dur::from_micros(10) },
/// ];
/// let served = fifo_serve(&jobs);
/// assert_eq!(served[1].start, Time::from_micros(10)); // waited 6 µs
/// assert_eq!(served[1].wait(), Dur::from_micros(6));
/// ```
pub fn fifo_serve(jobs: &[Job]) -> Vec<Served> {
    let mut out = Vec::with_capacity(jobs.len());
    let mut server_free = Time::ZERO;
    let mut prev_arrival = Time::ZERO;
    for job in jobs {
        assert!(
            job.arrival >= prev_arrival,
            "fifo_serve requires time-ordered arrivals"
        );
        prev_arrival = job.arrival;
        let start = job.arrival.max(server_free);
        let depart = start + job.service;
        server_free = depart;
        out.push(Served {
            arrival: job.arrival,
            start,
            depart,
        });
    }
    out
}

/// The workload (virtual waiting time) found by each job **just before**
/// its own arrival: the total unfinished work of previously-arrived
/// jobs. This is `W(a_i^-)` of §5.1.4 when the trace holds only
/// cross-traffic, and the basis for the intrusion-residual recursion.
pub fn workload_at_arrivals(jobs: &[Job]) -> Vec<Dur> {
    let mut out = Vec::with_capacity(jobs.len());
    let mut w = Dur::ZERO; // unfinished work right after previous arrival
    let mut prev = Time::ZERO;
    for job in jobs {
        debug_assert!(job.arrival >= prev);
        let idle = job.arrival - prev;
        w = w.saturating_sub(idle);
        out.push(w);
        w += job.service;
        prev = job.arrival;
    }
    out
}

/// Number of jobs in the system (queued + in service) found by each job
/// at its arrival instant, **excluding itself**.
pub fn queue_len_at_arrivals(served: &[Served]) -> Vec<usize> {
    // Job j is in the system at time t iff arrival_j <= t < depart_j.
    // Arrivals are sorted; departures are sorted too (FIFO). Two-pointer
    // scan: at arrival_i, the jobs still present among 0..i are those
    // with depart > arrival_i.
    let mut out = Vec::with_capacity(served.len());
    let mut head = 0usize; // first of the earlier jobs not yet departed
    for (i, s) in served.iter().enumerate() {
        while head < i && served[head].depart <= s.arrival {
            head += 1;
        }
        out.push(i - head);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(a_us: u64, s_us: u64) -> Job {
        Job {
            arrival: Time::from_micros(a_us),
            service: Dur::from_micros(s_us),
        }
    }

    #[test]
    fn empty_trace() {
        assert!(fifo_serve(&[]).is_empty());
        assert!(workload_at_arrivals(&[]).is_empty());
    }

    #[test]
    fn isolated_jobs_start_immediately() {
        let served = fifo_serve(&[j(0, 10), j(100, 10)]);
        assert_eq!(served[0].start, Time::from_micros(0));
        assert_eq!(served[0].depart, Time::from_micros(10));
        assert_eq!(served[1].start, Time::from_micros(100));
        assert_eq!(served[1].wait(), Dur::ZERO);
    }

    #[test]
    fn back_to_back_jobs_queue_up() {
        let served = fifo_serve(&[j(0, 10), j(0, 10), j(0, 10)]);
        assert_eq!(served[0].depart, Time::from_micros(10));
        assert_eq!(served[1].start, Time::from_micros(10));
        assert_eq!(served[1].wait(), Dur::from_micros(10));
        assert_eq!(served[2].depart, Time::from_micros(30));
        assert_eq!(served[2].sojourn(), Dur::from_micros(30));
    }

    #[test]
    fn partial_overlap() {
        let served = fifo_serve(&[j(0, 10), j(5, 10), j(30, 5)]);
        assert_eq!(served[1].start, Time::from_micros(10));
        assert_eq!(served[1].depart, Time::from_micros(20));
        // Third job arrives after the busy period ends.
        assert_eq!(served[2].start, Time::from_micros(30));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_arrivals_panic() {
        fifo_serve(&[j(10, 1), j(5, 1)]);
    }

    #[test]
    fn workload_matches_waits() {
        // For a FIFO queue the wait of job i equals the workload it
        // finds at arrival (all earlier unfinished work).
        let jobs = vec![j(0, 10), j(3, 7), j(4, 2), j(50, 5), j(51, 1)];
        let served = fifo_serve(&jobs);
        let wl = workload_at_arrivals(&jobs);
        for (s, w) in served.iter().zip(&wl) {
            assert_eq!(s.wait(), *w);
        }
    }

    #[test]
    fn queue_len_counts_jobs_in_system() {
        let jobs = vec![j(0, 10), j(1, 10), j(2, 10), j(100, 10)];
        let served = fifo_serve(&jobs);
        let lens = queue_len_at_arrivals(&served);
        assert_eq!(lens, vec![0, 1, 2, 0]);
    }

    #[test]
    fn conservation_total_busy_time() {
        // Sum of service = total busy time = last departure minus idle.
        let jobs = vec![j(0, 5), j(2, 5), j(20, 5)];
        let served = fifo_serve(&jobs);
        let total_service: u64 = jobs.iter().map(|x| x.service.as_nanos()).sum();
        let busy: u64 = served.iter().map(|s| (s.depart - s.start).as_nanos()).sum();
        assert_eq!(total_service, busy);
        assert_eq!(served.last().unwrap().depart, Time::from_micros(25));
    }
}
