//! Integration: measurement tools over multi-hop wired paths and the
//! OFDM PHY — coverage beyond the paper's single-hop 802.11b scope.

use csmaprobe::core::multihop::{Hop, WiredPath};
use csmaprobe::mac::{measured_standalone_capacity_bps, BianchiModel};
use csmaprobe::phy::Phy;
use csmaprobe::probe::pair::PacketPairProbe;
use csmaprobe::probe::slops::SlopsEstimator;
use csmaprobe::probe::train::TrainProbe;

#[test]
fn slops_finds_tight_link_on_multihop_path() {
    // Tight link is hop 2 (A = 3 Mb/s); the narrow link is hop 3
    // (C = 8 Mb/s) — they differ, and the tool must find the tight one.
    let path = WiredPath::new(vec![
        Hop::new(100e6, 10e6),
        Hop::new(10e6, 7e6), // A = 3 Mb/s  <-- tight
        Hop::new(8e6, 1e6),  // A = 7 Mb/s, C = 8 (narrow)
    ]);
    assert_eq!(path.available_bps(), 3e6);
    let est = SlopsEstimator {
        n: 250,
        reps: 6,
        ..Default::default()
    };
    let r = est.run(&path, 41);
    assert!(
        (2.3e6..3.8e6).contains(&r.estimate_bps),
        "tight-link estimate {:.0}",
        r.estimate_bps
    );
}

#[test]
fn packet_pair_finds_narrow_link_on_multihop_path() {
    let path = WiredPath::new(vec![
        Hop::new(100e6, 0.0),
        Hop::new(8e6, 0.0), // narrow
        Hop::new(50e6, 0.0),
    ]);
    let m = PacketPairProbe::new(1500, 50).measure(&path, 43);
    let c = m.rate_from_min_bps();
    assert!((c - 8e6).abs() / 8e6 < 0.01, "narrow-link estimate {c:.0}");
}

#[test]
fn long_trains_respect_fluid_composition() {
    // Through two congested hops, the end-to-end long-train response is
    // bounded by the per-hop fluid responses composed in sequence.
    use csmaprobe::core::rate_response::fifo_rate_response;
    let path = WiredPath::new(vec![Hop::new(10e6, 4e6), Hop::new(10e6, 4e6)]);
    let ri = 8e6;
    let ro = TrainProbe::new(1200, 1500, ri)
        .measure(&path, 8, 45)
        .output_rate_bps();
    // One-hop fluid value, then fed into the second hop.
    let after_one = fifo_rate_response(ri, 10e6, 6e6);
    let after_two = fifo_rate_response(after_one, 10e6, 6e6);
    assert!(
        ro <= after_one * 1.03,
        "two hops cannot beat one: {ro:.0} vs {after_one:.0}"
    );
    assert!(
        ro >= after_two * 0.9,
        "composition lower bound: {ro:.0} vs {after_two:.0}"
    );
}

#[test]
fn ofdm_saturation_matches_bianchi() {
    // 802.11g at 54 Mb/s: the classic ~50% MAC efficiency result, and
    // the simulator must agree with Bianchi's model there too.
    let phy = Phy::ofdm_g(54_000_000);
    let sim_c = measured_standalone_capacity_bps(&phy, 1500, 3000, 47);
    let model = BianchiModel::solve(&phy, 1, 1500);
    let rel = (sim_c - model.throughput_bps).abs() / model.throughput_bps;
    assert!(
        rel < 0.02,
        "sim {sim_c:.0} vs Bianchi {:.0}",
        model.throughput_bps
    );
    // Classic ballpark: 1500-byte UDP over 54 Mb/s OFDM ≈ 26-32 Mb/s.
    assert!(
        (24e6..34e6).contains(&sim_c),
        "OFDM capacity {sim_c:.0} out of the classic band"
    );
}

#[test]
fn ofdm_two_station_fairness() {
    use csmaprobe::desim::time::Time;
    use csmaprobe::mac::{saturated_source, WlanSim};
    let mut sim = WlanSim::new(Phy::ofdm_g(54_000_000), 49);
    let a = sim.add_station(saturated_source(1500, 2000));
    let b = sim.add_station(saturated_source(1500, 2000));
    let out = sim.run(Time::MAX);
    let horizon = out
        .records(a)
        .last()
        .unwrap()
        .done
        .min(out.records(b).last().unwrap().done);
    let ta = out.throughput_bps(a, horizon);
    let tb = out.throughput_bps(b, horizon);
    assert!((ta - tb).abs() / (ta + tb) < 0.05, "{ta} vs {tb}");
    // With CWmin 15 (vs 31 on 11b), collisions are more frequent.
    assert!(out.collisions > 0);
}
