//! Property tests for the slot-quantised DCF kernel
//! (`csmaprobe::mac::slotted`): the backoff state machine's invariants,
//! checked over randomised regimes rather than hand-picked seeds.
//!
//! The per-seed bit-identity against the event core is pinned in
//! `crates/mac` unit tests and `tests/tier_equivalence.rs`; these
//! properties instead constrain the kernel *internally* — every draw
//! bounded by its stage window, windows doubling to CWmax and resetting
//! on success, frozen counters resuming without a redraw — so a
//! regression that happened to break both engines identically would
//! still be caught.

use csmaprobe::desim::time::{Dur, Time};
use csmaprobe::mac::{BackoffDraw, SlottedFlow, SlottedSim, WlanSim};
use csmaprobe::phy::Phy;
use csmaprobe::traffic::{PacketArrival, PoissonSource, SizeModel, TraceSource};
use proptest::prelude::*;

/// Max backoff stage of a PHY: where `cw_at_stage` stops growing.
fn max_stage(phy: &Phy) -> u32 {
    let mut s = 0;
    while phy.cw_at_stage(s + 1) > phy.cw_at_stage(s) {
        s += 1;
    }
    s
}

/// Run `n` saturated slotted stations and return every backoff draw.
fn saturated_draws(n: usize, packets: u64, seed: u64) -> Vec<BackoffDraw> {
    let mut sim = SlottedSim::new(Phy::dsss_11mbps(), seed);
    for _ in 0..n {
        sim.add_station(vec![SlottedFlow::Saturated {
            bytes: 1500,
            packets,
        }]);
    }
    sim.watch_backoffs();
    sim.run(Time::MAX).backoffs
}

proptest! {
    // Every draw is bounded by the contention window of its stage, and
    // that window is exactly the PHY's schedule for the stage.
    #[test]
    fn backoff_draws_bounded_by_stage_window(
        n in 2usize..5,
        seed in 0u64..500,
    ) {
        let phy = Phy::dsss_11mbps();
        let draws = saturated_draws(n, 40, seed);
        prop_assert!(!draws.is_empty());
        for d in &draws {
            prop_assert_eq!(d.cw, phy.cw_at_stage(d.stage));
            prop_assert!(d.slots <= d.cw, "draw {} above cw {}", d.slots, d.cw);
            prop_assert!(d.station < n);
        }
    }

    // Stage trajectories per station: a stage only ever steps up by
    // one (a collision), saturating at the CWmax stage, or resets to
    // zero (success/drop) — and the window doubles exactly on the way
    // up.
    #[test]
    fn cw_doubles_to_cwmax_and_resets_on_success(
        n in 2usize..4,
        seed in 0u64..500,
    ) {
        let phy = Phy::dsss_11mbps();
        let top = max_stage(&phy);
        let draws = saturated_draws(n, 60, seed);
        let mut escalations = 0usize;
        let mut resets = 0usize;
        for st in 0..n {
            let stages: Vec<u32> = draws
                .iter()
                .filter(|d| d.station == st)
                .map(|d| d.stage)
                .collect();
            for w in stages.windows(2) {
                let (prev, next) = (w[0], w[1]);
                if next == 0 {
                    if prev > 0 {
                        resets += 1;
                    }
                    continue;
                }
                prop_assert_eq!(next, (prev + 1).min(top), "stage {prev} -> {next}");
                escalations += 1;
                if next <= top && phy.cw_at_stage(prev) < phy.cw_max {
                    // Doubling: CW_{k+1} = 2(CW_k + 1) - 1 until CWmax.
                    prop_assert_eq!(
                        phy.cw_at_stage(next),
                        (2 * (phy.cw_at_stage(prev) + 1) - 1).min(phy.cw_max)
                    );
                }
            }
        }
        // Saturated contention must actually exercise both paths.
        prop_assert!(escalations > 0, "no collisions in a saturated cell");
        prop_assert!(resets > 0, "no successful resets");
    }
}

/// Frozen counters resume exactly: a station whose countdown is
/// interrupted by another transmission keeps its remaining slots —
/// no redraw, no slot lost or gained.
///
/// Construction: station A sends two back-to-back frames, station B
/// queues one frame during A's first transmission. B draws `b` slots
/// anchored at the first busy-end; A rearms with `a2` slots on the same
/// anchor. When `a2 < b`, A's second frame interrupts B after exactly
/// `a2` counted slots, so B must transmit `b − a2` slots after the
/// second busy period's DIFS edge.
#[test]
fn frozen_backoff_resumes_exactly() {
    let phy = Phy::dsss_11mbps();
    let slot = phy.slot;
    let difs = phy.difs();
    let data = phy.data_airtime(1500);
    let exchange = data + phy.sifs + phy.ack_airtime();

    let mut exercised = 0usize;
    for seed in 0..60u64 {
        // A: immediate access at t = 0, so tx1 at DIFS.
        let t_b = difs + Dur::from_micros(700); // inside A's first frame
        let mut sim = SlottedSim::new(phy.clone(), seed);
        let a = sim.add_station(vec![SlottedFlow::Saturated {
            bytes: 1500,
            packets: 2,
        }]);
        let b = sim.add_station(vec![SlottedFlow::Trace(vec![PacketArrival::new(
            Time::ZERO + t_b,
            1500,
        )])]);
        assert_eq!(a.0, 0);
        sim.watch_flow(b, 0);
        sim.watch_backoffs();
        let out = sim.run(Time::MAX);

        let draw = |st: usize, nth: usize| -> Option<u32> {
            out.backoffs
                .iter()
                .filter(|d| d.station == st)
                .nth(nth)
                .map(|d| d.slots)
        };
        let b_draw = draw(1, 0).expect("B draws on arrival during busy");
        let a_rearm = draw(0, 0).expect("A rearms after its first frame");
        if a_rearm >= b_draw {
            continue; // B wins or collides; not the freeze shape
        }
        exercised += 1;

        let busy_end_1 = difs + exchange;
        let tx2 = busy_end_1 + difs + slot * a_rearm as u64;
        let busy_end_2 = tx2 + exchange;
        let b_tx = busy_end_2 + difs + slot * (b_draw - a_rearm) as u64;

        let rec = &out.records[0];
        assert_eq!(
            rec.rx_end,
            Time::ZERO + b_tx + data,
            "seed {seed}: B resumed with the wrong remaining count \
             (drew {b_draw}, frozen after {a_rearm})"
        );
        assert_eq!(rec.retries, 0);
    }
    assert!(
        exercised >= 10,
        "only {exercised}/60 seeds hit the freeze shape"
    );
}

/// A single station never contends with anyone: the slotted kernel and
/// the event core must agree bit-for-bit on every record, across
/// random Poisson loads — the contention-free floor of the
/// trajectory-exactness contract.
#[test]
fn single_station_bit_identical_to_event_core() {
    let phy = Phy::dsss_11mbps();
    for (seed, rate) in [(1u64, 8e5), (2, 2e6), (3, 6e6), (4, 1.2e7)] {
        let until = Time::from_millis(400);

        let mut ev = WlanSim::new(phy.clone(), seed);
        let st = ev.add_station(Box::new(PoissonSource::from_bitrate(
            rate,
            SizeModel::Fixed(1500),
            Time::ZERO,
            until,
        )));
        let ev_out = ev.run(Time::MAX);

        let mut sl = SlottedSim::new(phy.clone(), seed);
        let s = sl.add_station(vec![SlottedFlow::Poisson {
            rate_bps: rate,
            bytes: 1500,
            flow: 0,
            start: Time::ZERO,
            until,
        }]);
        sl.watch_flow(s, 0);
        let sl_out = sl.run(Time::MAX);

        assert_eq!(
            ev_out.records(st),
            &sl_out.records[..],
            "rate {rate} seed {seed}"
        );
        assert!(!sl_out.records.is_empty());
    }
}

/// Trace flows replay byte-for-byte: an explicit arrival list through
/// the slotted kernel equals the event core's TraceSource run.
#[test]
fn trace_flow_bit_identical_to_event_core() {
    let phy = Phy::dsss_11mbps();
    let arrivals: Vec<PacketArrival> = (0..40)
        .map(|i| PacketArrival::new(Time::from_micros(1_000 + 2_400 * i), 1500))
        .collect();

    let mut ev = WlanSim::new(phy.clone(), 77);
    let st = ev.add_station(Box::new(TraceSource::new(arrivals.clone())));
    let ev_out = ev.run(Time::MAX);

    let mut sl = SlottedSim::new(phy, 77);
    let s = sl.add_station(vec![SlottedFlow::Trace(arrivals)]);
    sl.watch_flow(s, 0);
    let sl_out = sl.run(Time::MAX);

    assert_eq!(ev_out.records(st), &sl_out.records[..]);
    assert_eq!(sl_out.records.len(), 40);
}
