//! Property-based tests (proptest) on the workspace's core data
//! structures and invariants.

use csmaprobe::core::sample_path::{intrusion_residuals, output_gap, total_delays};
use csmaprobe::desim::event::EventQueue;
use csmaprobe::desim::rng::SimRng;
use csmaprobe::desim::time::{Dur, Time};
use csmaprobe::mac::{saturated_source, WlanSim};
use csmaprobe::phy::Phy;
use csmaprobe::queueing::fifo::{fifo_serve, workload_at_arrivals, Job};
use csmaprobe::stats::ecdf::Ecdf;
use csmaprobe::stats::ks::{ks_critical_value, two_sample_ks};
use csmaprobe::stats::mser::mser_m;
use csmaprobe::stats::online::OnlineStats;
use csmaprobe::stats::p2::P2Quantile;
use csmaprobe::traffic::probe::ProbeTrain;
use proptest::prelude::*;

proptest! {
    // ---------- desim::time ----------

    #[test]
    fn time_dur_arithmetic_consistent(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = Time::from_nanos(a);
        let dur = Dur::from_nanos(d);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!((t + dur).since(t), dur);
        prop_assert!(t + dur >= t);
    }

    #[test]
    fn dur_mul_div_round_trips(ns in 0u64..1_000_000_000_000u64, k in 1u64..1000) {
        let d = Dur::from_nanos(ns);
        prop_assert_eq!((d * k) / k, d);
        prop_assert_eq!(d.mul_div(k, k), d);
        // div_ceil >= div.
        let unit = Dur::from_nanos(k);
        prop_assert!(d.div_ceil_dur(unit) >= d.div_dur(unit));
        prop_assert!(d.div_ceil_dur(unit) - d.div_dur(unit) <= 1);
    }

    // ---------- desim::event ----------

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_nanos(t), i);
        }
        let mut prev = Time::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn event_queue_time_seq_order_under_interleaved_pushes(
        times in prop::collection::vec(0u64..50, 2..120),
        pops_between in prop::collection::vec(0usize..4, 2..120),
    ) {
        // Reference model: a stable sort by (time, insertion seq).
        // Interleave pushes with pops and require the queue to match the
        // model pop-for-pop — this pins the FIFO tie-break (the narrow
        // time range forces many equal timestamps), not just time order.
        let mut q = EventQueue::new();
        let mut model: Vec<(Time, usize)> = Vec::new();
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for (seq, (&t, &pops)) in times.iter().zip(&pops_between).enumerate() {
            let time = Time::from_micros(t);
            q.push(time, seq);
            model.push((time, seq));
            for _ in 0..pops {
                let Some((qt, qv)) = q.pop() else { break };
                popped.push((qt, qv));
                let min_idx = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(mt, ms))| (mt, ms))
                    .map(|(i, _)| i)
                    .unwrap();
                expected.push(model.remove(min_idx));
            }
        }
        while let Some((qt, qv)) = q.pop() {
            popped.push((qt, qv));
            let min_idx = model
                .iter()
                .enumerate()
                .min_by_key(|(_, &(mt, ms))| (mt, ms))
                .map(|(i, _)| i)
                .unwrap();
            expected.push(model.remove(min_idx));
        }
        prop_assert!(model.is_empty());
        prop_assert_eq!(popped, expected);
    }

    // ---------- desim::rng ----------

    #[test]
    fn rng_below_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_exp_nonnegative(seed in any::<u64>(), mean in 1e-9f64..1e3) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let x = rng.exp(mean);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    // ---------- queueing::fifo ----------

    #[test]
    fn lindley_invariants(
        gaps in prop::collection::vec(0u64..5_000u64, 1..100),
        services in prop::collection::vec(1u64..3_000u64, 100),
    ) {
        let mut t = 0u64;
        let jobs: Vec<Job> = gaps
            .iter()
            .zip(&services)
            .map(|(&g, &s)| {
                t += g;
                Job { arrival: Time::from_micros(t), service: Dur::from_micros(s) }
            })
            .collect();
        let served = fifo_serve(&jobs);
        // Work conservation + FIFO ordering invariants.
        let mut prev_depart = Time::ZERO;
        for (job, s) in jobs.iter().zip(&served) {
            prop_assert!(s.start >= job.arrival);
            prop_assert!(s.start >= prev_depart);
            prop_assert_eq!(s.depart - s.start, job.service);
            prop_assert!(s.depart > prev_depart);
            prev_depart = s.depart;
        }
        // Waits equal workload found at arrival.
        let wl = workload_at_arrivals(&jobs);
        for (s, w) in served.iter().zip(&wl) {
            prop_assert_eq!(s.wait(), *w);
        }
        // Total busy time equals total service time.
        let busy: u64 = served.iter().map(|s| (s.depart - s.start).as_nanos()).sum();
        let service: u64 = jobs.iter().map(|j| j.service.as_nanos()).sum();
        prop_assert_eq!(busy, service);
    }

    // ---------- stats::ecdf ----------

    #[test]
    fn ecdf_is_monotone_cdf(sample in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let e = Ecdf::new(sample.clone());
        let lo = e.values()[0];
        let hi = *e.values().last().unwrap();
        let mut prev_step = 0.0;
        let mut prev_int = 0.0;
        for k in 0..=40 {
            let x = lo - 1.0 + (hi - lo + 2.0) * k as f64 / 40.0;
            let fs = e.eval(x);
            let fi = e.eval_interpolated(x);
            prop_assert!((0.0..=1.0).contains(&fs));
            prop_assert!((0.0..=1.0).contains(&fi));
            prop_assert!(fs >= prev_step - 1e-12);
            prop_assert!(fi >= prev_int - 1e-12);
            prev_step = fs;
            prev_int = fi;
        }
        prop_assert_eq!(e.eval(hi), 1.0);
        prop_assert_eq!(e.eval_interpolated(hi), 1.0);
    }

    // ---------- stats::ks ----------

    #[test]
    fn ks_statistic_bounded_and_symmetric_threshold(
        a in prop::collection::vec(0.0f64..1.0, 5..100),
        b in prop::collection::vec(0.0f64..1.0, 5..100),
    ) {
        let out = two_sample_ks(&a, &b, 0.05);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&out.statistic));
        prop_assert!(out.threshold > 0.0);
        prop_assert_eq!(out.reject, out.statistic > out.threshold);
        let t1 = ks_critical_value(a.len(), b.len(), 0.05);
        let t2 = ks_critical_value(b.len(), a.len(), 0.05);
        prop_assert!((t1 - t2).abs() < 1e-15);
    }

    #[test]
    fn ks_identical_samples_never_differ_much(a in prop::collection::vec(0.0f64..1.0, 20..200)) {
        let out = two_sample_ks(&a, &a, 0.05);
        // Only interpolation error separates the two ECDFs.
        prop_assert!(out.statistic <= 1.0 / (a.len() as f64).sqrt() + 0.2);
    }

    // ---------- stats::mser ----------

    #[test]
    fn mser_truncates_at_most_half(series in prop::collection::vec(0.0f64..100.0, 4..300), m in 1usize..4) {
        if let Some(r) = mser_m(&series, m) {
            let k = series.len() / m;
            prop_assert!(r.truncate_batches <= k / 2);
            prop_assert_eq!(r.truncate_raw, r.truncate_batches * m);
            prop_assert!(r.min_statistic.is_finite());
        }
    }

    // ---------- stats::online ----------

    #[test]
    fn online_stats_merge_associative(
        a in prop::collection::vec(-1e3f64..1e3, 1..100),
        b in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut merged = OnlineStats::from_slice(&a);
        merged.merge(&OnlineStats::from_slice(&b));
        let mut whole: Vec<f64> = a.clone();
        whole.extend(&b);
        let direct = OnlineStats::from_slice(&whole);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.mean() - direct.mean()).abs() < 1e-9);
        prop_assert!((merged.variance() - direct.variance()).abs() < 1e-6);
        prop_assert_eq!(merged.min(), direct.min());
        prop_assert_eq!(merged.max(), direct.max());
    }

    // The correctness keystone of the streaming reduce: accumulators
    // merged from split streams must agree with one sequential pass.

    #[test]
    fn online_stats_chunked_merge_matches_sequential(
        xs in prop::collection::vec(-1e3f64..1e3, 1..400),
        chunk in 1usize..64,
    ) {
        // Merge in fixed chunk order, exactly like replicate::run_reduce.
        let mut merged = OnlineStats::new();
        for part in xs.chunks(chunk) {
            merged.merge(&OnlineStats::from_slice(part));
        }
        let direct = OnlineStats::from_slice(&xs);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.mean() - direct.mean()).abs() < 1e-9);
        prop_assert!((merged.variance() - direct.variance()).abs() < 1e-6);
    }

    #[test]
    fn p2_merge_agrees_with_sequential_push(
        seed in any::<u64>(),
        n in 100usize..3000,
        split_frac in 0.05f64..0.95,
    ) {
        // Uniform[0,1) stream split in two, each half into its own P²
        // median estimator, merged — must agree with one sequential
        // estimator to within the estimator's own accuracy band.
        let mut rng = SimRng::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.f64()).collect();
        let split = ((n as f64 * split_frac) as usize).clamp(1, n - 1);
        let mut whole = P2Quantile::median();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = P2Quantile::median();
        let mut b = P2Quantile::median();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!(
            (a.value() - whole.value()).abs() < 0.08,
            "merged {} vs sequential {} (n={}, split={})",
            a.value(),
            whole.value(),
            n,
            split
        );
        // Both near the true median as a sanity anchor.
        prop_assert!((a.value() - 0.5).abs() < 0.15);
    }

    // ---------- core::sample_path ----------

    #[test]
    fn residuals_nonnegative_and_zero_start(
        mu in prop::collection::vec(1e-6f64..1e-2, 2..50),
        g_i in 1e-6f64..1e-2,
        u in 0.0f64..1.0,
    ) {
        let us = vec![u; mu.len() - 1];
        let r = intrusion_residuals(g_i, &mu, &us);
        prop_assert_eq!(r[0], 0.0);
        prop_assert!(r.iter().all(|&x| x >= 0.0));
        // Higher utilisation can only increase residuals.
        let r0 = intrusion_residuals(g_i, &mu, &vec![0.0; mu.len() - 1]);
        for (hi, lo) in r.iter().zip(&r0) {
            prop_assert!(hi >= lo);
        }
    }

    #[test]
    fn gap_identity_eq16_eq17(
        mu in prop::collection::vec(1e-6f64..1e-2, 2..50),
        g_i in 1e-6f64..1e-2,
    ) {
        let us = vec![0.0; mu.len() - 1];
        let r = intrusion_residuals(g_i, &mu, &us);
        let w = vec![0.0; mu.len()];
        let z = total_delays(&mu, &r, &w);
        let departures: Vec<f64> = z
            .iter()
            .enumerate()
            .map(|(i, zi)| i as f64 * g_i + zi)
            .collect();
        // eq (16) computed from departures == gI + (Z_n - Z_1)/(n-1).
        let lhs = output_gap(&departures);
        let rhs = g_i + (z.last().unwrap() - z[0]) / (z.len() as f64 - 1.0);
        prop_assert!((lhs - rhs).abs() < 1e-12);
    }

    // ---------- traffic::probe ----------

    #[test]
    fn probe_train_arrivals_periodic(n in 2usize..200, bytes in 1u32..2000, gap_us in 0u64..10_000) {
        let t = ProbeTrain { n, bytes, gap: Dur::from_micros(gap_us), flow: 3 };
        let arr = t.arrivals(Time::from_micros(77));
        prop_assert_eq!(arr.len(), n);
        for (i, p) in arr.iter().enumerate() {
            prop_assert_eq!(p.time, Time::from_micros(77) + t.gap * i as u64);
            prop_assert_eq!(p.bytes, bytes);
            prop_assert_eq!(p.flow, 3);
        }
        prop_assert_eq!(t.span(), t.gap * (n as u64 - 1));
    }
}

proptest! {
    // ---------- phy ----------

    #[test]
    fn phy_airtime_monotone_in_bytes_and_rate(bytes in 1u32..2304, extra in 1u32..500) {
        let phy = csmaprobe::phy::Phy::dsss_11mbps();
        prop_assert!(phy.data_airtime(bytes + extra) > phy.data_airtime(bytes));
        // Faster PHY, strictly less airtime for the same frame.
        let slow = csmaprobe::phy::Phy::dsss(2_000_000, csmaprobe::phy::Preamble::Long);
        prop_assert!(phy.data_airtime(bytes) < slow.data_airtime(bytes));
        // OFDM symbol padding is monotone too.
        let g = csmaprobe::phy::Phy::ofdm_g(54_000_000);
        prop_assert!(g.data_airtime(bytes + extra) >= g.data_airtime(bytes));
    }

    // ---------- mac::bianchi ----------

    #[test]
    fn bianchi_fixed_point_in_bounds(n in 1usize..64, bytes in 100u32..1500) {
        let phy = csmaprobe::phy::Phy::dsss_11mbps();
        let m = csmaprobe::mac::BianchiModel::solve(&phy, n, bytes);
        prop_assert!(m.tau > 0.0 && m.tau < 1.0, "tau {}", m.tau);
        prop_assert!((0.0..1.0).contains(&m.p), "p {}", m.p);
        prop_assert!(m.throughput_bps > 0.0);
        prop_assert!(m.fair_share_bps * n as f64 <= m.throughput_bps * 1.0001);
        // Throughput can never exceed the payload fraction of the PHY rate.
        prop_assert!(m.throughput_bps < phy.data_rate_bps as f64);
        prop_assert!(m.mean_access_delay_s > 0.0);
    }

    // ---------- queueing::workload vs fifo ----------

    #[test]
    fn workload_process_matches_lindley(
        gaps in prop::collection::vec(0u64..3_000u64, 1..80),
        services in prop::collection::vec(1u64..2_000u64, 80),
    ) {
        use csmaprobe::queueing::fifo::Job;
        use csmaprobe::queueing::workload::WorkloadProcess;
        let mut t = 0u64;
        let jobs: Vec<Job> = gaps
            .iter()
            .zip(&services)
            .map(|(&g, &s)| {
                t += g;
                Job { arrival: Time::from_micros(t), service: Dur::from_micros(s) }
            })
            .collect();
        let wp = WorkloadProcess::from_jobs(&jobs);
        let waits = workload_at_arrivals(&jobs);
        // W(a_i^-) from the continuous process equals the Lindley wait —
        // except for simultaneous arrivals, where the left limit
        // excludes ALL jobs at that instant (the paper's a⁻ semantics)
        // while the FIFO wait includes earlier-queued ties.
        for (i, (job, w)) in jobs.iter().zip(&waits).enumerate() {
            let tied = i > 0 && jobs[i - 1].arrival == job.arrival;
            if tied {
                prop_assert!(wp.eval_left(job.arrival) <= *w);
            } else {
                prop_assert_eq!(wp.eval_left(job.arrival), *w);
            }
        }
        // The workload right after the last arrival drains to zero.
        let last = jobs.last().unwrap();
        let after = last.arrival + wp.eval(last.arrival) + Dur::from_micros(1);
        prop_assert_eq!(wp.eval(after), Dur::ZERO);
    }

    // ---------- traffic::MergeSource ----------

    #[test]
    fn merge_source_preserves_time_order(
        a_gaps in prop::collection::vec(0u64..1_000u64, 1..40),
        b_gaps in prop::collection::vec(0u64..1_000u64, 1..40),
    ) {
        use csmaprobe::traffic::{MergeSource, PacketArrival, Source, TraceSource};
        let mk = |gaps: &[u64], flow: u16| {
            let mut t = 0u64;
            let v: Vec<PacketArrival> = gaps
                .iter()
                .map(|&g| {
                    t += g;
                    PacketArrival { time: Time::from_micros(t), bytes: 100, flow }
                })
                .collect();
            Box::new(TraceSource::new(v)) as Box<dyn Source>
        };
        let total = a_gaps.len() + b_gaps.len();
        let mut merged = MergeSource::new(vec![mk(&a_gaps, 1), mk(&b_gaps, 2)]);
        let mut rng = SimRng::new(1);
        let mut prev = Time::ZERO;
        let mut count = 0;
        let mut flows = [0usize; 3];
        while let Some(p) = merged.next_packet(&mut rng) {
            prop_assert!(p.time >= prev, "order violated");
            prev = p.time;
            flows[p.flow as usize] += 1;
            count += 1;
        }
        prop_assert_eq!(count, total);
        prop_assert_eq!(flows[1], a_gaps.len());
        prop_assert_eq!(flows[2], b_gaps.len());
    }

    // ---------- stats::autocorr ----------

    #[test]
    fn autocorr_bounded(xs in prop::collection::vec(-1e3f64..1e3, 10..200), k in 1usize..8) {
        use csmaprobe::stats::autocorr::{autocorrelation, integrated_autocorr_time};
        let r = autocorrelation(&xs, k);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "rho = {r}");
        prop_assert!(integrated_autocorr_time(&xs) >= 1.0);
    }
}

// MAC invariants need bigger machinery; keep the case count small.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mac_records_well_ordered(seed in any::<u64>(), n in 2usize..60, bytes in 40u32..1500) {
        let mut sim = WlanSim::new(Phy::dsss_11mbps(), seed);
        let a = sim.add_station(saturated_source(bytes, n));
        let b = sim.add_station(saturated_source(1500, n));
        let out = sim.run(Time::MAX);
        for id in [a, b] {
            let recs = out.records(id);
            prop_assert_eq!(recs.len(), n);
            let mut prev_done = Time::ZERO;
            for r in recs {
                // Temporal sanity per packet.
                prop_assert!(r.head >= r.arrival);
                prop_assert!(r.rx_end > r.head);
                prop_assert!(r.done > r.rx_end);
                // FIFO: completions ordered.
                prop_assert!(r.done > prev_done);
                prev_done = r.done;
                // Access delay at least DIFS + airtime.
                let phy = Phy::dsss_11mbps();
                let min_delay = phy.difs() + phy.success_exchange(r.bytes);
                prop_assert!(r.access_delay() >= min_delay);
            }
        }
    }

    #[test]
    fn mac_channel_never_double_booked(seed in any::<u64>()) {
        let mut sim = WlanSim::new(Phy::dsss_11mbps(), seed);
        let a = sim.add_station(saturated_source(1500, 40));
        let b = sim.add_station(saturated_source(800, 40));
        let out = sim.run(Time::MAX);
        // Successful data frames must not overlap in airtime.
        let phy = Phy::dsss_11mbps();
        let mut frames: Vec<(Time, Time)> = Vec::new();
        for id in [a, b] {
            for r in out.records(id) {
                if !r.dropped && r.retries == 0 {
                    let start = r.rx_end - phy.data_airtime(r.bytes);
                    frames.push((start, r.done));
                }
            }
        }
        frames.sort();
        for w in frames.windows(2) {
            prop_assert!(w[1].0 >= w[0].1, "overlap: {:?} then {:?}", w[0], w[1]);
        }
    }
}
