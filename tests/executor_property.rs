//! Property and stress tests of the process-wide work-stealing chunk
//! executor (`desim::executor`) under **concurrent** submissions — the
//! scenarios the per-runner suites cannot reach.
//!
//! The contracts pinned here:
//!
//! 1. **Concurrent bit-identity** — N threads running `run_cells_emit`
//!    grids at once (randomized cell budgets, worker counts, staggered
//!    submission order) each produce rows bitwise-equal to their own
//!    standalone sequential reference. Stealing across submissions must
//!    never leak into results.
//! 2. **No starvation** — a small job submitted while a large grid
//!    saturates the pool completes while the grid is still in flight
//!    (the submitting thread always drives its own chunks).
//! 3. **Mid-flight hand-back** — workers freed by a finished submission
//!    join one still running (observed as cross-thread execution of the
//!    survivor's chunks).

use csmaprobe::desim::replicate::{self, CHUNK};
use csmaprobe::desim::rng::{derive_seed, SimRng};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Serialises tests in this binary: they pin the global worker limit.
fn limit_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// One synthetic grid cell reduction: (count, xor-of-seeds, f64 sum) —
/// count and xor catch coverage bugs, the float sum catches any
/// merge-order deviation at the bit level.
type Acc = (u64, u64, f64);

fn run_grid_with(cells: &[usize], base: u64) -> Vec<Acc> {
    let mut rows = Vec::with_capacity(cells.len());
    replicate::run_cells_emit(
        cells,
        |c, r, acc: &mut Acc| {
            let seed = derive_seed(derive_seed(base, c as u64), r as u64);
            acc.0 += 1;
            acc.1 ^= seed;
            acc.2 += SimRng::new(seed).f64();
        },
        |_| (0u64, 0u64, 0.0f64),
        |a, b| {
            a.0 += b.0;
            a.1 ^= b.1;
            a.2 += b.2;
        },
        |_, acc| rows.push(acc),
    );
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Contract 1: concurrent callers, randomized everything.
    #[test]
    fn concurrent_grids_bitwise_equal_their_sequential_references(
        grids in prop::collection::vec(
            prop::collection::vec(0usize..(3 * CHUNK), 1..8),
            2..5,
        ),
        base in any::<u64>(),
        workers in 2usize..6,
        stagger_us in prop::collection::vec(0u64..300, 2..5),
    ) {
        let _g = limit_guard();
        // Standalone sequential references, one per grid.
        replicate::set_worker_limit(1);
        let references: Vec<Vec<Acc>> = grids
            .iter()
            .enumerate()
            .map(|(i, cells)| run_grid_with(cells, derive_seed(base, i as u64)))
            .collect();
        // The same grids, submitted concurrently from one thread each,
        // in a randomized staggered order, stealing across each other.
        replicate::set_worker_limit(workers);
        let outputs: Vec<Vec<Acc>> = std::thread::scope(|scope| {
            let handles: Vec<_> = grids
                .iter()
                .enumerate()
                .map(|(i, cells)| {
                    let delay = *stagger_us.get(i % stagger_us.len()).unwrap_or(&0);
                    scope.spawn(move || {
                        std::thread::sleep(Duration::from_micros(delay));
                        run_grid_with(cells, derive_seed(base, i as u64))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        replicate::set_worker_limit(0);
        for (i, (got, want)) in outputs.iter().zip(&references).enumerate() {
            prop_assert_eq!(got.len(), want.len(), "grid {} row count", i);
            for (c, (g, w)) in got.iter().zip(want).enumerate() {
                prop_assert_eq!(g.0, w.0, "grid {} cell {} count", i, c);
                prop_assert_eq!(g.1, w.1, "grid {} cell {} seeds", i, c);
                prop_assert_eq!(
                    g.2.to_bits(), w.2.to_bits(),
                    "grid {} cell {} float sum", i, c
                );
            }
        }
    }
}

/// Contract 2: a late-arriving small job is not starved by a large
/// in-flight grid — the submitting thread always executes its own
/// chunks, so the small job's latency is bounded by its own work, not
/// the grid's.
#[test]
fn late_small_job_completes_while_large_grid_is_in_flight() {
    let _g = limit_guard();
    replicate::set_worker_limit(4);
    let big_done = AtomicBool::new(false);
    let big_started = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // ~40 chunks x 40 ms: >= 400 ms wall even on 4 workers.
            replicate::run_reduce(
                40 * CHUNK,
                7,
                |i, _, acc: &mut u64| {
                    big_started.store(true, Ordering::SeqCst);
                    if i % CHUNK == 0 {
                        std::thread::sleep(Duration::from_millis(40));
                    }
                    *acc += 1;
                },
                || 0u64,
                |a, b| *a += b,
            );
            big_done.store(true, Ordering::SeqCst);
        });
        while !big_started.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        let small = replicate::run_reduce(
            2 * CHUNK,
            11,
            |_, _, acc: &mut u64| *acc += 1,
            || 0u64,
            |a, b| *a += b,
        );
        let latency = t0.elapsed();
        assert_eq!(small, (2 * CHUNK) as u64);
        assert!(
            !big_done.load(Ordering::SeqCst),
            "the large grid should still be in flight when the small job returns \
             (small-job latency: {latency:?})"
        );
        assert!(
            latency < Duration::from_millis(500),
            "small job took {latency:?} behind the large grid"
        );
    });
    replicate::set_worker_limit(0);
}

/// Contract 3: when one submission finishes, its workers move into the
/// other submission mid-flight — the survivor's chunks are executed by
/// more than one thread even though it was submitted from a single
/// thread.
#[test]
fn finished_submission_hands_workers_to_the_survivor() {
    let _g = limit_guard();
    replicate::set_worker_limit(4);
    let survivor_threads = Mutex::new(std::collections::BTreeSet::new());
    let note = |set: &Mutex<std::collections::BTreeSet<String>>| {
        set.lock()
            .unwrap()
            .insert(format!("{:?}", std::thread::current().id()));
    };
    std::thread::scope(|scope| {
        // A short job that ends quickly, freeing its helpers.
        scope.spawn(|| {
            replicate::run_reduce(
                4 * CHUNK,
                3,
                |_, _, acc: &mut u64| *acc += 1,
                || 0u64,
                |a, b| *a += b,
            );
        });
        // The survivor: long enough that freed workers join it.
        replicate::run_reduce(
            24 * CHUNK,
            5,
            |i, _, acc: &mut u64| {
                note(&survivor_threads);
                if i % CHUNK == 0 {
                    std::thread::sleep(Duration::from_millis(10));
                }
                *acc += 1;
            },
            || 0u64,
            |a, b| *a += b,
        );
    });
    replicate::set_worker_limit(0);
    let threads = survivor_threads.lock().unwrap().len();
    assert!(
        threads >= 2,
        "expected pool workers to steal into the surviving submission, \
         saw {threads} executing thread(s)"
    );
}

/// The executor under oversubscription: more workers than cores, more
/// jobs than workers — results identical to the 1-worker run (the CI
/// oversubscription leg in miniature, in-process).
#[test]
fn oversubscribed_worker_counts_are_bit_identical() {
    let _g = limit_guard();
    let cells: Vec<usize> = vec![5, 0, 70, CHUNK, 3 * CHUNK + 1, 1];
    replicate::set_worker_limit(1);
    let reference = run_grid_with(&cells, 0xABBA);
    for workers in [8usize, 16] {
        replicate::set_worker_limit(workers);
        let got = run_grid_with(&cells, 0xABBA);
        for (c, (g, w)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(g.0, w.0, "cell {c} count, {workers} workers");
            assert_eq!(g.1, w.1, "cell {c} seeds, {workers} workers");
            assert_eq!(
                g.2.to_bits(),
                w.2.to_bits(),
                "cell {c} sum, {workers} workers"
            );
        }
    }
    replicate::set_worker_limit(0);
}

/// Many tiny concurrent submissions (the sweep-figure shape) neither
/// deadlock nor cross-contaminate.
#[test]
fn many_small_concurrent_submissions_complete_correctly() {
    let _g = limit_guard();
    replicate::set_worker_limit(3);
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let failures = &failures;
            scope.spawn(move || {
                for round in 0..20u64 {
                    let reps = ((t * 31 + round * 17) % 100) as usize;
                    let n = replicate::run_reduce(
                        reps,
                        derive_seed(t, round),
                        |_, _, acc: &mut u64| *acc += 1,
                        || 0u64,
                        |a, b| *a += b,
                    );
                    if n != reps as u64 {
                        failures.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    replicate::set_worker_limit(0);
    assert_eq!(failures.load(Ordering::SeqCst), 0);
}
