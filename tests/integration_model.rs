//! Exact validation of the §5 sample-path framework against the
//! trace-driven FIFO simulator: the intrusion-residual recursion
//! (eq 14) and the delay decomposition (eq 15) must hold *exactly*
//! (integer-nanosecond arithmetic) on real queue sample paths, not
//! just on synthetic series.

use csmaprobe::core::sample_path::{intrusion_residuals, total_delays};
use csmaprobe::desim::rng::SimRng;
use csmaprobe::desim::time::{Dur, Time};
use csmaprobe::queueing::trace_sim::{merge_arrivals, simulate, FlowTag, TaggedJob};
use csmaprobe::traffic::{PoissonSource, SizeModel, Source};

/// Build a probe+cross trace, serve it, and return everything the
/// framework needs.
struct Scenario {
    /// Merged, served outcome.
    outcome: csmaprobe::queueing::trace_sim::TraceOutcome,
    /// The merged arrival sequence (aligned with outcome.served).
    jobs: Vec<TaggedJob>,
}

fn build(probe_n: usize, g_i: Dur, probe_service: Dur, cross_bps: f64, seed: u64) -> Scenario {
    let start = Time::from_millis(200);
    let probe: Vec<TaggedJob> = (0..probe_n)
        .map(|i| TaggedJob {
            arrival: start + g_i * i as u64,
            tag: FlowTag::Probe,
            bytes: 1500,
        })
        .collect();
    let horizon = start + g_i * probe_n as u64 + Dur::from_secs(2);
    let mut rng = SimRng::new(seed);
    let mut src =
        PoissonSource::from_bitrate(cross_bps, SizeModel::Fixed(1500), Time::ZERO, horizon);
    let mut cross = Vec::new();
    while let Some(p) = src.next_packet(&mut rng) {
        cross.push(TaggedJob {
            arrival: p.time,
            tag: FlowTag::Cross,
            bytes: p.bytes,
        });
    }
    let jobs = merge_arrivals(&probe, &cross);
    // Service: probe packets take `probe_service`; cross packets take a
    // size-proportional wire time at 10 Mb/s.
    let services: Vec<Dur> = jobs
        .iter()
        .map(|j| match j.tag {
            FlowTag::Probe => probe_service,
            FlowTag::Cross => Dur::from_secs_f64(j.bytes as f64 * 8.0 / 10e6),
        })
        .collect();
    let outcome = simulate(&jobs, move |i, _| services[i]);
    Scenario { outcome, jobs }
}

impl Scenario {
    /// Probe indices into the merged arrays.
    fn probe_idx(&self) -> Vec<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.tag == FlowTag::Probe)
            .map(|(i, _)| i)
            .collect()
    }

    /// Actual probe-work residual `R_i` at each probe arrival: the
    /// remaining service of earlier probe packets still in the system.
    fn actual_residuals(&self) -> Vec<f64> {
        let idx = self.probe_idx();
        idx.iter()
            .map(|&i| {
                let a_i = self.jobs[i].arrival;
                let mut ns: u64 = 0;
                for (&j, s) in idx.iter().zip(idx.iter().map(|&j| &self.outcome.served[j])) {
                    if j >= i {
                        break;
                    }
                    let served = s;
                    if served.depart > a_i {
                        // Remaining service: full if not started, else
                        // the part after a_i.
                        let rem_start = served.start.max(a_i);
                        ns += (served.depart - rem_start).as_nanos();
                    }
                }
                ns as f64 / 1e9
            })
            .collect()
    }

    /// Cross-traffic busy time of the server within `(from, to]`,
    /// as a fraction of the window.
    fn cross_utilisation(&self, from: Time, to: Time) -> f64 {
        let mut ns = 0u64;
        for (j, served) in self.jobs.iter().zip(&self.outcome.served) {
            if j.tag != FlowTag::Cross {
                continue;
            }
            if served.depart <= from || served.start >= to {
                continue;
            }
            let s = served.start.max(from);
            let e = served.depart.min(to);
            ns += (e - s).as_nanos();
        }
        ns as f64 / (to - from).as_nanos() as f64
    }

    /// Cross-traffic workload (remaining cross service) at `t⁻`.
    fn cross_workload_at(&self, t: Time) -> f64 {
        let mut ns = 0u64;
        for (j, served) in self.jobs.iter().zip(&self.outcome.served) {
            if j.tag != FlowTag::Cross || j.arrival >= t {
                continue;
            }
            if served.depart > t {
                let rem_start = served.start.max(t);
                ns += (served.depart - rem_start).as_nanos();
            }
        }
        ns as f64 / 1e9
    }
}

fn validate_eq14_and_eq15(probe_n: usize, g_i_us: u64, service_us: u64, cross_bps: f64, seed: u64) {
    let g_i = Dur::from_micros(g_i_us);
    let service = Dur::from_micros(service_us);
    let sc = build(probe_n, g_i, service, cross_bps, seed);
    let idx = sc.probe_idx();
    assert_eq!(idx.len(), probe_n);

    // μ_i: the probe service times (constant here); the "access delay"
    // of the wired framework is pure service.
    let mu = vec![service.as_secs_f64(); probe_n];

    // Per-gap cross utilisation u_fifo(a_{i}, a_{i+1}).
    let u: Vec<f64> = (1..probe_n)
        .map(|k| {
            let from = sc.jobs[idx[k - 1]].arrival;
            let to = sc.jobs[idx[k]].arrival;
            sc.cross_utilisation(from, to)
        })
        .collect();

    // eq (14) must match the actual probe-work residual exactly.
    let predicted = intrusion_residuals(g_i.as_secs_f64(), &mu, &u);
    let actual = sc.actual_residuals();
    for (k, (p, a)) in predicted.iter().zip(&actual).enumerate() {
        assert!(
            (p - a).abs() < 1e-9,
            "R_{k}: eq(14) {p:.9} vs actual {a:.9} (gI={g_i_us}us cross={cross_bps})"
        );
    }

    // eq (15): Z_i = μ_i + R_i + W(a_i) must equal the measured sojourn.
    let w: Vec<f64> = idx
        .iter()
        .map(|&i| sc.cross_workload_at(sc.jobs[i].arrival))
        .collect();
    let z = total_delays(&mu, &predicted, &w);
    for (k, &i) in idx.iter().enumerate() {
        let sojourn = sc.outcome.served[i].sojourn().as_secs_f64();
        assert!(
            (z[k] - sojourn).abs() < 1e-9,
            "Z_{k}: eq(15) {:.9} vs measured {sojourn:.9}",
            z[k]
        );
    }
}

#[test]
fn eq14_eq15_exact_without_cross_traffic() {
    // Fast probing, no cross: residuals accumulate deterministically.
    validate_eq14_and_eq15(50, 800, 1200, 0.0, 1);
    // Slow probing, no cross: residuals all zero.
    validate_eq14_and_eq15(50, 5_000, 1200, 0.0, 2);
}

#[test]
fn eq14_eq15_exact_with_light_cross_traffic() {
    validate_eq14_and_eq15(80, 2_000, 1200, 2e6, 3);
}

#[test]
fn eq14_eq15_exact_with_heavy_cross_traffic() {
    // ρ_cross = 0.6 plus probe work: queue rarely empties.
    validate_eq14_and_eq15(80, 2_000, 1200, 6e6, 4);
    validate_eq14_and_eq15(120, 1_400, 1000, 7e6, 5);
}

#[test]
fn eq14_eq15_exact_at_probe_saturation() {
    // gI < μ: the probe alone overloads the hop.
    validate_eq14_and_eq15(60, 900, 1500, 3e6, 6);
}
