//! Cross-crate integration: the WLAN link composition against the
//! analytical models (Bianchi, rate-response equations) and the wired
//! baseline.

use csmaprobe::core::link::{LinkConfig, WiredLink, WlanLink};
use csmaprobe::core::rate_response::{achievable_throughput, fifo_rate_response};
use csmaprobe::desim::time::Dur;
use csmaprobe::mac::{measured_standalone_capacity_bps, BianchiModel};
use csmaprobe::phy::Phy;
use csmaprobe::probe::train::TrainProbe;

#[test]
fn simulator_matches_bianchi_for_two_saturated_stations() {
    // Sim: probe saturates against a saturated contender; both should
    // get Bianchi's fair share.
    let phy = Phy::dsss_11mbps();
    let model = BianchiModel::solve(&phy, 2, 1500);
    let link = WlanLink::new(LinkConfig::default().contending_bps(11e6));
    let measured = TrainProbe::new(1500, 1500, 10.9e6)
        .measure(&link, 6, 0xB1A)
        .output_rate_bps();
    let rel = (measured - model.fair_share_bps).abs() / model.fair_share_bps;
    assert!(
        rel < 0.08,
        "sim fair share {measured:.0} vs Bianchi {:.0} ({rel:.3})",
        model.fair_share_bps
    );
}

#[test]
fn wired_link_reproduces_eq1_over_the_sweep() {
    let c = 10e6;
    let cross = 4e6;
    let link = WiredLink::new(c, cross);
    for k in [1u64, 3, 5, 7, 9] {
        let ri = k as f64 * 1e6;
        let measured = TrainProbe::new(1500, 1500, ri)
            .measure(&link, 6, 0xE41 + k)
            .output_rate_bps();
        let model = fifo_rate_response(ri, c, c - cross);
        let rel = (measured - model).abs() / model;
        assert!(
            rel < 0.06,
            "ri {ri}: measured {measured:.0} vs eq(1) {model:.0}"
        );
    }
}

#[test]
fn complete_link_matches_eq4() {
    // With FIFO cross-traffic in the probe's queue, eq (4) governs the
    // saturated region: at high ri the probe squeezes the FIFO
    // cross-traffic out and ro -> Bf·ri/(ri + u·Bf); at the knee the
    // response passes through B = Bf(1 - u_fifo).
    use csmaprobe::core::rate_response::complete_rate_response;
    let contending = 3e6;
    let fifo = 1.5e6;
    let no_fifo = WlanLink::new(LinkConfig::default().contending_bps(contending));
    let bf = TrainProbe::new(1200, 1500, 10e6)
        .measure(&no_fifo, 6, 1)
        .output_rate_bps();
    let u_fifo = fifo / bf;
    let with_fifo = WlanLink::new(
        LinkConfig::default()
            .contending_bps(contending)
            .fifo_cross_bps(fifo),
    );

    // Saturated region: ri = 10 Mb/s.
    let measured_hi = TrainProbe::new(1200, 1500, 10e6)
        .measure(&with_fifo, 6, 2)
        .output_rate_bps();
    let model_hi = complete_rate_response(10e6, bf, u_fifo);
    let rel = (measured_hi - model_hi).abs() / model_hi;
    assert!(
        rel < 0.1,
        "ro(10M) measured {measured_hi:.0} vs eq(4) {model_hi:.0}"
    );

    // Knee: probing exactly at B = Bf(1-u) must still get through.
    let b = achievable_throughput(bf, u_fifo);
    let measured_b = TrainProbe::new(1200, 1500, b)
        .measure(&with_fifo, 6, 3)
        .output_rate_bps();
    assert!(
        (measured_b - b).abs() / b < 0.12,
        "ro(B) measured {measured_b:.0} vs B {b:.0}"
    );
}

#[test]
fn capacity_consistent_across_methods() {
    let phy = Phy::dsss_11mbps();
    let analytic = phy.standalone_capacity_bps(1500);
    let simulated = measured_standalone_capacity_bps(&phy, 1500, 2000, 3);
    let bianchi = BianchiModel::solve(&phy, 1, 1500).throughput_bps;
    for (name, v) in [("sim", simulated), ("bianchi", bianchi)] {
        let rel = (v - analytic).abs() / analytic;
        assert!(rel < 0.02, "{name}: {v:.0} vs analytic {analytic:.0}");
    }
}

#[test]
fn probing_below_fair_share_is_transparent() {
    // An unsaturated probe flow must neither lose throughput nor harm
    // an unsaturated contender.
    let link = WlanLink::new(LinkConfig::default().contending_bps(2e6));
    let pt = link.steady_state(2e6, Dur::from_secs(8), 5);
    assert!((pt.output_rate_bps - 2e6).abs() / 2e6 < 0.05);
    assert!((pt.contending_bps[0] - 2e6).abs() / 2e6 < 0.08);
}

#[test]
fn heterogeneous_multistation_link_is_stable() {
    use csmaprobe::core::link::CrossSpec;
    // The Fig 9 mix must deliver every flow's offered load when the
    // probe stays light.
    let link = WlanLink::new(
        LinkConfig::default()
            .contending(CrossSpec::poisson_sized(100_000.0, 40))
            .contending(CrossSpec::poisson_sized(500_000.0, 576))
            .contending(CrossSpec::poisson_sized(750_000.0, 1000))
            .contending(CrossSpec::poisson_sized(2_000_000.0, 1500)),
    );
    let pt = link.steady_state(0.3e6, Dur::from_secs(10), 7);
    assert!((pt.output_rate_bps - 0.3e6).abs() / 0.3e6 < 0.1);
    let offered = [0.1e6, 0.5e6, 0.75e6, 2.0e6];
    for (k, &off) in offered.iter().enumerate() {
        let got = pt.contending_bps[k];
        assert!(
            (got - off).abs() / off < 0.15,
            "station {k}: {got:.0} vs offered {off:.0}"
        );
    }
}

#[test]
fn wlan_identity_region_follows_input_not_fifo_eq() {
    // At ri between A and B, eq (1) predicts deviation but the CSMA
    // link must still deliver ro = ri (the paper's key Fig 1 contrast).
    let cross = 4.5e6;
    let link = WlanLink::new(LinkConfig::default().contending_bps(cross));
    let c = measured_standalone_capacity_bps(&Phy::dsss_11mbps(), 1500, 2000, 9);
    let a = c - cross; // ~1.7 Mb/s
    let ri = 2.5e6; // between A and B
    assert!(ri > a);
    let measured = TrainProbe::new(800, 1500, ri)
        .measure(&link, 8, 11)
        .output_rate_bps();
    assert!(
        (measured - ri).abs() / ri < 0.06,
        "ro {measured:.0} should equal ri {ri:.0} past A"
    );
    let fifo_prediction = fifo_rate_response(ri, c, a);
    assert!(
        measured > 1.05 * fifo_prediction,
        "CSMA response {measured:.0} must exceed the FIFO-model {fifo_prediction:.0}"
    );
}
