//! Golden determinism gate for the serving layer: a session's final
//! estimate through the resident [`SessionManager`] is **bit-identical**
//! to the equivalent one-shot `run_reduce` batch — for worker counts 1,
//! 4 and 8, with well over 100 sessions in flight at once, and with the
//! chunk pool interleaving every session's chunks freely.
//!
//! This is the acceptance criterion of the serve PR; the `service-smoke`
//! CI job proves the same thing end-to-end over TCP by byte-comparing
//! finalized session tables.

use csmaprobe::desim::executor;
use csmaprobe::service::mix::{session_specs, MixConfig};
use csmaprobe::service::session::{one_shot, Phase, SessionAcc, SessionManager};
use std::sync::Mutex;

/// Serializes tests that pin the process-wide worker limit.
static WORKER_LOCK: Mutex<()> = Mutex::new(());

/// A mix heavy on the cheap wired link so 120 sessions replicate
/// quickly, but still crossing every tool family.
fn mix() -> MixConfig {
    MixConfig {
        trains: vec!["short".into()],
        reps: 16,
        ..MixConfig::default()
    }
}

fn key_bits(acc: &SessionAcc) -> (u64, u64, u64, u64, u64, usize) {
    (
        acc.est.count(),
        acc.est.mean().to_bits(),
        acc.est.std_dev().to_bits(),
        acc.p50.value().to_bits(),
        acc.p95.value().to_bits(),
        acc.failed,
    )
}

#[test]
fn resident_sessions_match_one_shot_bitwise_for_any_worker_count() {
    let _guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const SESSIONS: u64 = 120;
    let specs = session_specs(&mix(), 0xC5AA_2009, SESSIONS).expect("mix resolves");

    // One-shot references, computed under the default worker limit —
    // run_reduce's own contract makes them worker-count independent.
    let references: Vec<_> = specs.iter().map(one_shot).collect();

    for workers in [1usize, 4, 8] {
        executor::set_worker_limit(workers);
        // 6 drivers: at least 100 sessions queued (in flight) while
        // the first ones replicate, and several sessions' chunks
        // interleave in the shared pool at any instant.
        let mgr = SessionManager::new(6, None);
        for spec in &specs {
            mgr.submit(spec.clone()).expect("submit");
        }
        mgr.drain();
        for (spec, reference) in specs.iter().zip(&references) {
            let snap = mgr.poll(&spec.id).expect("poll");
            assert_eq!(
                snap.phase,
                Phase::Done,
                "{} under {workers} workers",
                spec.id
            );
            assert_eq!(snap.reps_done, spec.reps);
            assert_eq!(
                key_bits(&snap.acc),
                key_bits(reference),
                "session {} diverged from its one-shot reference under {workers} worker(s)",
                spec.id
            );
        }
        let counts = mgr.counts();
        assert_eq!(counts.accepted, SESSIONS as usize);
        assert_eq!(counts.done, SESSIONS as usize);
        assert_eq!(counts.cancelled, 0);
        mgr.shutdown();
    }
    executor::set_worker_limit(0);
}
