//! Cross-crate integration: the transient phenomenon end to end — MAC
//! simulator → transient experiment → statistics → measurement bias →
//! MSER correction.

use csmaprobe::core::bounds::{achievable_throughput_transient, dispersion_bounds};
use csmaprobe::core::link::{LinkConfig, WlanLink};
use csmaprobe::core::transient::TransientExperiment;
use csmaprobe::probe::mser::MserProbe;
use csmaprobe::probe::train::TrainProbe;
use csmaprobe::traffic::probe::ProbeTrain;

fn paper_link() -> WlanLink {
    WlanLink::new(LinkConfig::default().contending_bps(4.5e6))
}

#[test]
fn transient_exists_and_is_bounded() {
    let exp = TransientExperiment {
        link: paper_link(),
        train: ProbeTrain::from_rate(300, 1500, 6e6),
        reps: 600,
        seed: 0x7A1,
    };
    let data = exp.run();
    let profile = data.mean_profile();
    let steady = data.steady_mean(150);
    // First packet accelerated; transient over within 150 packets at
    // 0.1 tolerance (the paper's §4.1 bound).
    assert!(profile[0] < 0.9 * steady);
    let est = data.transient_length(150, 0.1);
    let len = est.first_within.expect("transient must converge");
    assert!(len <= 150, "transient length {len}");
}

#[test]
fn transient_longest_near_fair_share() {
    // §4: "the transitory is maximum when either probing and/or
    // contending traffic are exactly sending at their fair-share".
    // Compare a light-load and a near-fair-share cross load.
    let mk = |cross_bps: f64| {
        let exp = TransientExperiment {
            link: WlanLink::new(LinkConfig::default().contending_bps(cross_bps)),
            train: ProbeTrain::from_rate(300, 1500, 6.2e6),
            reps: 700,
            seed: 0x7A2,
        };
        let data = exp.run();
        data.transient_length(150, 0.05).first_within.unwrap_or(300)
    };
    let light = mk(0.6e6);
    let near_share = mk(3.1e6);
    assert!(
        near_share >= light,
        "near fair share {near_share} pkts should be >= light load {light} pkts"
    );
}

#[test]
fn short_train_bias_matches_eq31() {
    // The dispersion-inferred rate of an n-packet train at saturating
    // input equals eq (31)'s transient-aware achievable throughput.
    let link = paper_link();
    let n = 12;
    let m = TrainProbe::new(n, 1500, 10e6).measure(&link, 700, 0x7A3);
    let e_mu = m.mean_mu_profile();
    let b_eq31 = achievable_throughput_transient(&e_mu, 1500, 0.0);
    let measured = m.output_rate_bps();
    // At saturating rate the queue never drains: E[gO] =
    // (1/(n-1))·Σ_{i≥2} μ_i (eq 27), while eq (31) averages all n
    // delays; both are within a few percent here.
    let rel = (measured - b_eq31).abs() / b_eq31;
    assert!(
        rel < 0.1,
        "measured {measured:.0} vs eq(31) {b_eq31:.0} ({rel:.3})"
    );
    // And both exceed the steady-state value (optimism).
    let steady = TrainProbe::new(1000, 1500, 10e6)
        .measure(&link, 6, 0x7A4)
        .output_rate_bps();
    assert!(measured > steady);
}

#[test]
fn measured_dispersion_respects_eq27_exact_region() {
    let link = paper_link();
    let m = TrainProbe::new(20, 1500, 9e6).measure(&link, 500, 0x7A5);
    let e_mu = m.mean_mu_profile();
    let g_i = m.train.gap.as_secs_f64();
    let b = dispersion_bounds(&e_mu, g_i, 0.0);
    let exact = b.exact.expect("9 Mb/s is deep in the saturated region");
    let go = m.mean_output_gap_s();
    assert!(
        (go - exact).abs() / exact < 0.05,
        "E[gO] {go:.6} vs eq(27) {exact:.6}"
    );
}

#[test]
fn mser_correction_reduces_bias_on_wired_links_too() {
    // §7.4: "this method not only improves measurements in wireless
    // scenarios but also in wired ones". The FIFO queue has its own
    // warm-up (underestimation from an initially empty queue).
    use csmaprobe::core::link::WiredLink;
    let link = WiredLink::new(10e6, 6e6); // A = 4 Mb/s
    let ri = 7e6; // above A: queue builds during the train
    let steady = TrainProbe::new(1500, 1500, ri)
        .measure(&link, 8, 0x7A6)
        .output_rate_bps();
    let short = MserProbe::new(20, 1500, ri, 2).measure(&link, 600, 0x7A7);
    let raw_err = (short.raw_rate_bps() - steady).abs();
    let cor_err = (short.corrected_rate_bps() - steady).abs();
    assert!(
        cor_err <= raw_err,
        "wired: raw {:.0} corrected {:.0} steady {steady:.0}",
        short.raw_rate_bps(),
        short.corrected_rate_bps()
    );
}

#[test]
fn no_transient_when_system_starts_empty_or_backlogged() {
    // §4: "the transient-state is present whenever the system is not
    // empty, nor in backlog when the probing flow starts". With no
    // cross-traffic at all, the per-index delay profile is flat.
    let exp = TransientExperiment {
        link: WlanLink::new(LinkConfig::default()),
        train: ProbeTrain::from_rate(100, 1500, 6.5e6),
        reps: 400,
        seed: 0x7A8,
    };
    let data = exp.run();
    let profile = data.mean_profile();
    let steady = data.steady_mean(50);
    // All indices (even the first ones, backoff aside) within a few
    // percent of the steady mean: first packet has no backoff so it is
    // *slightly* faster; exclude it and require flatness from #2 on.
    for (i, mu) in profile.iter().enumerate().skip(1) {
        assert!(
            (mu - steady).abs() / steady < 0.06,
            "index {i}: {mu} vs {steady}"
        );
    }
}
