//! MSER equivalence tests: the two-phase **streaming** `PooledProfile`
//! implementation must produce the same corrected rate as the
//! historical **materialising** implementation (which held every
//! replication's gap vector at once), on arbitrary randomised gap
//! profiles — plus a fixed-seed regression vector on a real WLAN link.
//!
//! The randomised comparison runs both algorithms over a [`ReplayTarget`]
//! that deterministically replays pre-generated receiver gap series, so
//! the property isolates the estimator from the simulator.

use csmaprobe::core::link::{LinkConfig, ProbeTarget, TrainObservation, WlanLink};
use csmaprobe::desim::rng::derive_seed;
use csmaprobe::desim::time::{Dur, Time};
use csmaprobe::probe::mser::{measure_rate_sweep, MserCell, MserProbe};
use csmaprobe::stats::mser::mser_m;
use csmaprobe::stats::transient::IndexedSeries;
use csmaprobe::traffic::probe::ProbeTrain;
use proptest::prelude::*;
use std::collections::HashMap;

/// A probe target that replays canned receiver-gap series: replication
/// seeds map to pre-generated gap vectors.
struct ReplayTarget {
    by_seed: HashMap<u64, Vec<f64>>,
    bytes: u32,
}

impl ReplayTarget {
    /// Build a target replaying `gaps[i]` for replication `i` of
    /// `master_seed` (the seed derivation `run_reduce` uses).
    fn new(master_seed: u64, gaps: &[Vec<f64>], bytes: u32) -> Self {
        let by_seed = gaps
            .iter()
            .enumerate()
            .map(|(i, g)| (derive_seed(master_seed, i as u64), g.clone()))
            .collect();
        ReplayTarget { by_seed, bytes }
    }

    fn observation(&self, seed: u64) -> TrainObservation {
        let gaps = &self.by_seed[&seed];
        let mut rx_times = Vec::with_capacity(gaps.len() + 1);
        let mut t = Time::ZERO + Dur::from_secs(1);
        rx_times.push(t);
        for &g in gaps {
            t += Dur::from_secs_f64(g);
            rx_times.push(t);
        }
        TrainObservation {
            arrivals: rx_times.clone(),
            rx_times,
            access_delays: None,
            g_i: Dur::from_millis(1),
            bytes: self.bytes,
        }
    }
}

impl ProbeTarget for ReplayTarget {
    fn probe_train(&self, _train: ProbeTrain, seed: u64) -> TrainObservation {
        self.observation(seed)
    }
    fn probe_sequence(&self, _offsets: &[Dur], _bytes: u32, seed: u64) -> TrainObservation {
        self.observation(seed)
    }
    fn probe_bytes(&self) -> u32 {
        self.bytes
    }
}

/// The historical materialising PooledProfile algorithm, verbatim:
/// collect every replication's gaps, run MSER on the across-replication
/// mean profile, truncate every replication at the common cut.
fn materialising_reference(per_rep: &[Vec<f64>], m: usize) -> (f64, f64, usize) {
    let mut raw = Vec::new();
    for gaps in per_rep {
        if !gaps.is_empty() {
            raw.push(gaps.iter().sum::<f64>() / gaps.len() as f64);
        }
    }
    let mut profile = IndexedSeries::new();
    for gaps in per_rep {
        profile.push_replication(gaps);
    }
    let cut = mser_m(&profile.means(), m)
        .map(|r| r.truncate_raw)
        .unwrap_or(0);
    let mut corrected = Vec::new();
    let mut truncated = 0usize;
    for gaps in per_rep {
        let kept = &gaps[cut.min(gaps.len())..];
        if !kept.is_empty() {
            corrected.push(kept.iter().sum::<f64>() / kept.len() as f64);
            truncated += cut.min(gaps.len());
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    (mean(&raw), mean(&corrected), truncated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    // Streaming two-phase == materialising reference, on randomised
    // gap profiles with a transient-like decaying prefix.
    #[test]
    fn streamed_pooled_profile_matches_materialising(
        reps in 3usize..40,
        n_gaps in 4usize..30,
        master_seed in any::<u64>(),
        ramp in 0.0f64..3.0,
        noise in 0.01f64..0.5,
    ) {
        // Per-replication gap series: a decaying-transient mean profile
        // (gap grows toward steady state, like accelerated first
        // packets) plus bounded pseudorandom noise.
        let mut gaps = Vec::with_capacity(reps);
        for r in 0..reps {
            let mut rng = csmaprobe::desim::rng::SimRng::new(derive_seed(master_seed ^ 0xA5, r as u64));
            let series: Vec<f64> = (0..n_gaps)
                .map(|i| {
                    let steady = 1e-3;
                    let transient = -ramp * steady * (-(i as f64) / 5.0).exp();
                    let jitter = (rng.f64() - 0.5) * noise * steady;
                    (steady + transient + jitter).max(1e-6)
                })
                .collect();
            gaps.push(series);
        }

        let target = ReplayTarget::new(master_seed, &gaps, 1500);
        // The reference must consume exactly what the streaming path
        // sees: the replayed gaps, quantised to the simulator's integer
        // nanosecond timestamps.
        let replayed: Vec<Vec<f64>> = (0..reps)
            .map(|i| {
                target
                    .observation(derive_seed(master_seed, i as u64))
                    .receiver_gaps_s()
            })
            .collect();
        let probe = MserProbe::new(n_gaps + 1, 1500, 5e6, 2);
        let streamed = probe.measure(&target, reps, master_seed);
        let (raw_ref, cor_ref, trunc_ref) = materialising_reference(&replayed, 2);

        prop_assert!((streamed.raw_gap.mean() - raw_ref).abs() / raw_ref < 1e-9,
            "raw {} vs {}", streamed.raw_gap.mean(), raw_ref);
        prop_assert!((streamed.corrected_gap.mean() - cor_ref).abs() / cor_ref < 1e-9,
            "corrected {} vs {}", streamed.corrected_gap.mean(), cor_ref);
        prop_assert!((streamed.mean_truncated - trunc_ref as f64 / reps as f64).abs() < 1e-12);

        // And the sweep path (fig17's route) agrees bit-for-bit with
        // the standalone streaming measure.
        let cells = [MserCell { probe, reps, seed: master_seed }];
        let swept = &measure_rate_sweep(&cells, &target)[0];
        prop_assert_eq!(swept.corrected_gap.mean().to_bits(),
            streamed.corrected_gap.mean().to_bits());
        prop_assert_eq!(swept.raw_gap.mean().to_bits(), streamed.raw_gap.mean().to_bits());
    }
}

/// Fixed-seed regression vector on a real WLAN link: pins the exact
/// numbers the streaming implementation produced at the time of the
/// two-phase conversion, so estimator drift cannot creep in silently.
#[test]
fn pooled_profile_regression_vector() {
    let link = WlanLink::new(LinkConfig::default().contending_bps(4_500_000.0));
    let m = MserProbe::new(20, 1500, 6e6, 2).measure(&link, 120, 0x00F1_6017);
    // Values recorded from this exact configuration (seed 0xF16017,
    // 120 reps); the tolerance allows libm-level cross-platform drift
    // only.
    let raw = m.raw_rate_bps();
    let corrected = m.corrected_rate_bps();
    let expect = |x: f64, want: f64, what: &str| {
        assert!(
            (x - want).abs() / want < 1e-6,
            "{what}: {x} vs pinned {want}"
        );
    };
    expect(raw, 3_492_135.732602755, "raw rate");
    expect(corrected, 3_436_010.734868093, "corrected rate");
    assert!(
        (m.mean_truncated - 4.0).abs() < 1e-12,
        "mean truncated {}",
        m.mean_truncated
    );
}
