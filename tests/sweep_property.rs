//! Property tests of the sweep scenario subsystem (`core::sweep`) and
//! the hardened rate-grid helper (`bench::scenarios::rate_sweep_mbps`).
//!
//! The properties pin the two contracts the sweep engine advertises:
//!
//! 1. **Sequential equivalence** — for arbitrary grids of points and
//!    replication budgets, `SweepRunner` output equals a plain
//!    sequential per-point fold (and is *bit-identical* to a standalone
//!    per-point `run_reduce`).
//! 2. **Grid hardening** — `rate_sweep_mbps` never emits non-monotone
//!    or out-of-range points, for any input including NaN/±inf and
//!    non-positive steps.

use csmaprobe::core::sweep::{run_sweep, SweepScenario};
use csmaprobe::desim::replicate;
use csmaprobe::desim::rng::{derive_seed, SimRng};
use csmaprobe::stats::accumulate::Accumulate;
use csmaprobe::stats::online::OnlineStats;
use csmaprobe_bench::scenarios::{rate_sweep_mbps, MAX_SWEEP_POINTS};
use proptest::prelude::*;

/// A synthetic sweep: point `p` folds `reps[p]` pseudorandom
/// observations (pure functions of `(seed, p, rep)`) into `OnlineStats`.
struct SyntheticSweep {
    reps: Vec<usize>,
    seed: u64,
}

impl SyntheticSweep {
    fn observation(&self, point: usize, rep: usize) -> f64 {
        let s = derive_seed(derive_seed(self.seed, point as u64), rep as u64);
        SimRng::new(s).f64()
    }
}

impl SweepScenario for SyntheticSweep {
    type Acc = OnlineStats;
    type Row = OnlineStats;

    fn name(&self) -> &str {
        "synthetic"
    }
    fn points(&self) -> usize {
        self.reps.len()
    }
    fn reps(&self, point: usize) -> usize {
        self.reps[point]
    }
    fn identity(&self, _point: usize) -> OnlineStats {
        OnlineStats::new()
    }
    fn replicate(&self, point: usize, rep: usize, acc: &mut OnlineStats) {
        acc.push(self.observation(point, rep));
    }
    fn finish(&self, _point: usize, acc: OnlineStats) -> OnlineStats {
        acc
    }
}

/// Order-materialising sweep: every `(point, rep)` pair, concatenated.
struct OrderSweep {
    reps: Vec<usize>,
}

impl SweepScenario for OrderSweep {
    type Acc = Vec<(usize, usize)>;
    type Row = Vec<(usize, usize)>;

    fn name(&self) -> &str {
        "order"
    }
    fn points(&self) -> usize {
        self.reps.len()
    }
    fn reps(&self, point: usize) -> usize {
        self.reps[point]
    }
    fn identity(&self, _point: usize) -> Vec<(usize, usize)> {
        Vec::new()
    }
    fn replicate(&self, point: usize, rep: usize, acc: &mut Vec<(usize, usize)>) {
        acc.push((point, rep));
    }
    fn finish(&self, _point: usize, acc: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        acc
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // SweepRunner == sequential reference, for arbitrary grids.
    #[test]
    fn sweep_runner_matches_sequential_reference(
        reps in prop::collection::vec(0usize..120, 1..12),
        seed in any::<u64>(),
    ) {
        let sweep = SyntheticSweep { reps: reps.clone(), seed };
        let rows = run_sweep(&sweep);
        prop_assert_eq!(rows.len(), reps.len());
        for (p, row) in rows.iter().enumerate() {
            // Plain sequential fold: identical counts, means equal up
            // to chunk-merge rounding.
            let mut reference = OnlineStats::new();
            for r in 0..reps[p] {
                reference.push(sweep.observation(p, r));
            }
            prop_assert_eq!(row.count(), reference.count());
            if reference.count() > 0 {
                prop_assert!((row.mean() - reference.mean()).abs() <= 1e-12);
            }
            // Standalone run_reduce over the same cell: bit-identical
            // (the engine's advertised contract).
            let standalone = replicate::run_reduce(
                reps[p],
                derive_seed(seed, p as u64),
                |_, s, acc: &mut OnlineStats| acc.push(SimRng::new(s).f64()),
                OnlineStats::new,
                Accumulate::merge,
            );
            prop_assert_eq!(row.mean().to_bits(), standalone.mean().to_bits());
            prop_assert_eq!(row.variance().to_bits(), standalone.variance().to_bits());
        }
    }

    // Every (point, rep) cell runs exactly once, in replication order
    // within its point, with rows in point order.
    #[test]
    fn sweep_runner_covers_the_exact_grid(
        reps in prop::collection::vec(0usize..90, 1..10),
    ) {
        let rows = run_sweep(&OrderSweep { reps: reps.clone() });
        prop_assert_eq!(rows.len(), reps.len());
        for (p, row) in rows.iter().enumerate() {
            let expected: Vec<(usize, usize)> = (0..reps[p]).map(|r| (p, r)).collect();
            prop_assert_eq!(row, &expected);
        }
    }

    // rate_sweep_mbps: monotone, in-range, bounded — for sane inputs.
    #[test]
    fn rate_sweep_sane_inputs_well_formed(
        lo in 0.1f64..20.0,
        span in 0.0f64..30.0,
        step in 0.01f64..5.0,
    ) {
        let hi = lo + span;
        let rates = rate_sweep_mbps(lo, hi, step);
        prop_assert!(!rates.is_empty());
        prop_assert!(rates.len() <= MAX_SWEEP_POINTS);
        prop_assert_eq!(rates[0], lo * 1e6);
        for w in rates.windows(2) {
            prop_assert!(w[1] > w[0], "non-monotone: {} then {}", w[0], w[1]);
        }
        for &r in &rates {
            prop_assert!(r.is_finite());
            prop_assert!(r >= lo * 1e6 * (1.0 - 1e-12));
            prop_assert!(r <= hi * 1e6 * (1.0 + 1e-9) + 1.0);
        }
    }

    // rate_sweep_mbps: garbage in, empty (never a nonsense grid) out.
    #[test]
    fn rate_sweep_garbage_inputs_never_emit_bad_points(
        lo in -5.0f64..20.0,
        hi in -5.0f64..20.0,
        step in -2.0f64..2.0,
        poison in 0u8..6,
    ) {
        // Occasionally replace a field with a non-finite value.
        let (lo, hi, step) = match poison {
            1 => (f64::NAN, hi, step),
            2 => (lo, f64::INFINITY, step),
            3 => (lo, hi, f64::NAN),
            4 => (lo, hi, f64::NEG_INFINITY),
            5 => (f64::INFINITY, f64::INFINITY, 0.0),
            _ => (lo, hi, step),
        };
        let rates = rate_sweep_mbps(lo, hi, step);
        prop_assert!(rates.len() <= MAX_SWEEP_POINTS);
        for w in rates.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        for &r in &rates {
            prop_assert!(r.is_finite() && r > 0.0, "bad point {r}");
        }
        // Degenerate triples must produce nothing at all.
        if !(lo.is_finite() && hi.is_finite() && step.is_finite())
            || lo <= 0.0
            || step <= 0.0
            || hi < lo
        {
            prop_assert!(rates.is_empty());
        }
    }
}

/// The runner stays bit-identical across worker counts on an arbitrary
/// (fixed, mixed-size) grid — the sweep analogue of the replication
/// engine's determinism tests.
#[test]
fn sweep_runner_bit_identical_across_worker_counts() {
    let sweep = SyntheticSweep {
        reps: vec![100, 1, 0, 64, 33],
        seed: 0xD00D,
    };
    replicate::set_worker_limit(1);
    let solo = run_sweep(&sweep);
    replicate::set_worker_limit(4);
    let quad = run_sweep(&sweep);
    replicate::set_worker_limit(0);
    for (a, b) in solo.iter().zip(&quad) {
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.variance().to_bits(), b.variance().to_bits());
    }
}
