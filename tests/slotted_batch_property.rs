//! Property tests of the replication-batched slotted DCF kernel
//! (`csmaprobe::mac::slotted_batch`): across **randomised regimes** —
//! station counts, flow mixes (saturated / Poisson / CBR / trace),
//! MAC options, counting windows, ragged lane counts and per-lane
//! early stops — [`BatchedSlottedSim`] must be **bit-identical** to N
//! scalar [`SlottedSim`] runs, one per lane seed.
//!
//! The `crates/mac` unit tests pin this contract on hand-picked
//! regimes; these properties sweep the configuration space so a draw
//! site that falls out of within-stream order (or scratch state that
//! leaks across lanes) cannot hide in a corner no unit test names.

use csmaprobe::desim::time::{Dur, Time};
use csmaprobe::mac::{BatchedSlottedSim, MacOptions, SlottedFlow, SlottedOutput, SlottedSim};
use csmaprobe::phy::Phy;
use csmaprobe::traffic::PacketArrival;
use proptest::prelude::*;

/// One randomly drawn regime: everything that configures a simulation
/// except the per-lane seeds.
#[derive(Debug)]
struct Regime {
    stations: Vec<Vec<SlottedFlow>>,
    options: MacOptions,
    watch: (usize, u16),
    stop: Option<(usize, u16, usize)>,
    window: Option<(Time, Time)>,
    horizon: Time,
}

/// Decode a regime from raw generator words; every choice is a pure
/// function of `bits`, so failures print a reproducible input.
fn regime(bits: u64, n_stations: usize, with_stop: bool, with_window: bool) -> Regime {
    let until = Time::from_millis(300);
    let mut stations = Vec::with_capacity(n_stations);
    for s in 0..n_stations {
        // Two selector bits per station pick its flow mix; station 0
        // always carries the watched (flow 1) traffic.
        let sel = (bits >> (2 * s)) & 0b11;
        let flows: Vec<SlottedFlow> = if s == 0 {
            // The probe-shaped station: a 25-packet trace, optionally
            // sharing its queue with a Poisson flow (the FIFO-cross
            // layout) when the selector's low bit is set.
            let gap = 1_500 + 173 * (bits >> 17 & 0x3F); // 1.5–12.3 µs packet spacing
            let trace: Vec<PacketArrival> = (0..25)
                .map(|i| PacketArrival {
                    time: Time::from_micros(2_000) + Dur::from_micros(gap) * i,
                    bytes: 1500,
                    flow: 1,
                })
                .collect();
            let mut flows = vec![SlottedFlow::Trace(trace)];
            if sel & 1 == 1 {
                flows.push(SlottedFlow::Poisson {
                    rate_bps: 800_000.0,
                    bytes: 1500,
                    flow: 2,
                    start: Time::ZERO,
                    until,
                });
            }
            flows
        } else {
            match sel {
                0 => vec![SlottedFlow::Saturated {
                    bytes: 1000 + 250 * (s as u32 % 3),
                    packets: 40,
                }],
                1 => vec![SlottedFlow::Poisson {
                    rate_bps: 1_000_000.0 + 700_000.0 * s as f64,
                    bytes: 1500,
                    flow: 0,
                    start: Time::ZERO,
                    until,
                }],
                _ => vec![SlottedFlow::Cbr {
                    rate_bps: 900_000.0 + 500_000.0 * s as f64,
                    bytes: 1200,
                    flow: 0,
                    start: Time::from_micros(500),
                    until,
                }],
            }
        };
        stations.push(flows);
    }
    let mut options = MacOptions::default();
    if bits >> 23 & 1 == 1 {
        options = options.with_frame_error_rate(0.15);
    }
    if bits >> 24 & 1 == 1 {
        options = options.with_rts_cts(800);
    }
    if bits >> 25 & 1 == 1 {
        options = options.without_immediate_access();
    }
    Regime {
        stations,
        options,
        watch: (0, 1),
        stop: with_stop.then_some((0, 1, 25)),
        window: with_window.then_some((Time::from_millis(50), until)),
        horizon: until + Dur::from_secs(1),
    }
}

/// Scalar reference: one `SlottedSim` per seed, identically configured.
fn scalar_outputs(r: &Regime, seeds: &[u64]) -> Vec<SlottedOutput> {
    seeds
        .iter()
        .map(|&seed| {
            let mut sim = SlottedSim::new(Phy::dsss_11mbps(), seed).with_options(r.options);
            let mut ids = Vec::new();
            for flows in &r.stations {
                ids.push(sim.add_station(flows.clone()));
            }
            sim.watch_flow(ids[r.watch.0], r.watch.1);
            if let Some((s, f, c)) = r.stop {
                sim.stop_after_flow(ids[s], f, c);
            }
            if let Some((from, to)) = r.window {
                sim.set_window(from, to);
            }
            sim.run(r.horizon)
        })
        .collect()
}

fn batched_outputs(r: &Regime, seeds: &[u64]) -> Vec<SlottedOutput> {
    let mut sim =
        BatchedSlottedSim::new(Phy::dsss_11mbps(), seeds.to_vec()).with_options(r.options);
    let mut ids = Vec::new();
    for flows in &r.stations {
        ids.push(sim.add_station(flows.clone()));
    }
    sim.watch_flow(ids[r.watch.0], r.watch.1);
    if let Some((s, f, c)) = r.stop {
        sim.stop_after_flow(ids[s], f, c);
    }
    if let Some((from, to)) = r.window {
        sim.set_window(from, to);
    }
    sim.run(r.horizon)
}

fn assert_lane_eq(sc: &SlottedOutput, ba: &SlottedOutput, l: usize) {
    assert_eq!(sc.records, ba.records, "records differ in lane {l}");
    assert_eq!(
        sc.collisions, ba.collisions,
        "collisions differ in lane {l}"
    );
    assert_eq!(sc.last_done, ba.last_done, "last_done differs in lane {l}");
    assert_eq!(
        sc.window_bits, ba.window_bits,
        "window_bits differ in lane {l}"
    );
}

fn assert_lanes_match(scalar: &[SlottedOutput], batched: &[SlottedOutput]) {
    assert_eq!(scalar.len(), batched.len());
    for (l, (sc, ba)) in scalar.iter().zip(batched).enumerate() {
        assert_lane_eq(sc, ba, l);
    }
}

proptest! {
    // Simulation-backed cases are expensive; 24 cases × up to 33 lanes
    // still sweeps a few hundred full replications per property.
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The headline contract: any regime, any (ragged) lane count —
    // including 1, a sub-chunk count, and a CHUNK-plus-tail count —
    // batches bit-identically to the scalar kernel.
    #[test]
    fn batched_lanes_bit_identical_across_random_regimes(
        bits in any::<u64>(),
        n_stations in 1usize..5,
        lanes in 1usize..34,
        seed0 in 0u64..1_000_000,
        with_window in any::<bool>(),
    ) {
        let r = regime(bits, n_stations, false, with_window);
        let seeds: Vec<u64> = (0..lanes as u64).map(|l| seed0 + 31 * l).collect();
        let sc = scalar_outputs(&r, &seeds);
        let ba = batched_outputs(&r, &seeds);
        prop_assert!(sc.iter().any(|o| !o.records.is_empty()), "regime never delivered");
        assert_lanes_match(&sc, &ba);
    }

    // Per-lane early stop: each lane halts independently once its
    // watched flow completes, exactly where its scalar run would.
    #[test]
    fn per_lane_stop_rule_bit_identical(
        bits in any::<u64>(),
        n_stations in 2usize..5,
        lanes in 2usize..20,
        seed0 in 0u64..1_000_000,
    ) {
        let r = regime(bits, n_stations, true, false);
        let seeds: Vec<u64> = (0..lanes as u64).map(|l| seed0 + 17 * l).collect();
        let sc = scalar_outputs(&r, &seeds);
        let ba = batched_outputs(&r, &seeds);
        for o in &sc {
            prop_assert_eq!(o.records.len(), 25, "stop rule must complete the train");
        }
        assert_lanes_match(&sc, &ba);
    }

    // Duplicate and permuted seeds: lane state is fully reset between
    // blocks, so a repeated seed reproduces its lane exactly and order
    // only permutes the outputs.
    #[test]
    fn duplicate_and_permuted_seeds_are_independent(
        bits in any::<u64>(),
        seed in 0u64..1_000_000,
    ) {
        let r = regime(bits, 3, false, false);
        let fwd = batched_outputs(&r, &[seed, seed + 1, seed]);
        assert_lane_eq(&fwd[0], &fwd[2], 2);
        let rev = batched_outputs(&r, &[seed + 1, seed]);
        assert_lane_eq(&fwd[1], &rev[0], 0);
        assert_lane_eq(&fwd[0], &rev[1], 1);
    }
}
