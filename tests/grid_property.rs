//! Property tests of the scenario-grid subsystem (`core::grid`) and
//! the crash-tolerant JSONL row sink (`bench::report::RowSink`).
//!
//! The properties pin the two contracts the grid runner advertises:
//!
//! 1. **Nested-sequential equivalence** — for arbitrary axis counts,
//!    extents and replication budgets, `GridRunner` output equals a
//!    plain nested-loop fold over the coordinates (and each cell is
//!    *bit-identical* to a standalone `run_reduce`), and scheduling any
//!    subset of cells reproduces exactly the full run's rows for those
//!    cells — the resume contract.
//! 2. **Truncation recovery** — a `RowSink` file truncated at *any*
//!    byte offset resumes to the longest complete-row prefix, and
//!    re-appending the missing rows reconstructs the original file
//!    byte-for-byte: no duplicate, lost, or corrupt rows.
//! 3. **Tier-provenance rejection** — rows persisted under one engine
//!    policy carry a run fingerprint no differently-policied grid will
//!    accept, so `--resume` refuses to mix engine tiers silently.
//! 4. **Shard partition soundness** — for any shard count, the
//!    name-keyed round-robin partition covers the cell space with
//!    pairwise-disjoint member sets, and running the shards
//!    independently (each under an arbitrary worker count) then merging
//!    their rows is bitwise identical to the unsharded run — the
//!    sharded-campaign contract.

use csmaprobe::core::grid::{
    run_grid, shard_members, GridRunner, GridScenario, GridShape, ShardSpec,
};
use csmaprobe::desim::replicate;
use csmaprobe::desim::rng::{derive_seed, SimRng};
use csmaprobe::stats::accumulate::Accumulate;
use csmaprobe::stats::online::OnlineStats;
use csmaprobe_bench::report::{row_key, RowSink};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A synthetic grid: the cell at `coord` folds a coordinate-dependent
/// number of pseudorandom observations (pure functions of
/// `(seed, coord, rep)`) into `OnlineStats`.
struct SyntheticGrid {
    dims: Vec<usize>,
    seed: u64,
}

impl SyntheticGrid {
    fn cell_seed(&self, coord: &[usize]) -> u64 {
        coord
            .iter()
            .fold(self.seed, |s, &c| derive_seed(s, c as u64))
    }
}

impl GridScenario for SyntheticGrid {
    type Acc = OnlineStats;
    type Row = OnlineStats;

    fn name(&self) -> &str {
        "synthetic"
    }
    fn shape(&self) -> GridShape {
        GridShape::new(self.dims.clone())
    }
    fn reps(&self, coord: &[usize]) -> usize {
        // Coordinate-dependent budgets spanning zero, sub-chunk and
        // multi-chunk cells (CHUNK = 32).
        (coord
            .iter()
            .enumerate()
            .map(|(a, &c)| (a + 2) * c)
            .sum::<usize>()
            * 7)
            % 71
    }
    fn identity(&self, _coord: &[usize]) -> OnlineStats {
        OnlineStats::new()
    }
    fn replicate(&self, coord: &[usize], rep: usize, acc: &mut OnlineStats) {
        let s = derive_seed(self.cell_seed(coord), rep as u64);
        acc.push(SimRng::new(s).f64());
    }
    fn finish(&self, _coord: &[usize], acc: OnlineStats) -> OnlineStats {
        acc
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // GridRunner == nested sequential loops, for arbitrary axis sizes.
    #[test]
    fn grid_runner_matches_nested_sequential_reference(
        dims in prop::collection::vec(0usize..4, 1..4),
        seed in any::<u64>(),
    ) {
        let grid = SyntheticGrid { dims: dims.clone(), seed };
        let rows = run_grid(&grid);
        let shape = grid.shape();
        prop_assert_eq!(rows.len(), shape.len());
        // Independent row-major enumeration: a hand-rolled odometer,
        // last axis fastest (nested `for` loops of arbitrary depth).
        let mut coords: Vec<Vec<usize>> = Vec::new();
        if dims.iter().all(|&d| d > 0) {
            let mut coord = vec![0usize; dims.len()];
            'odometer: loop {
                coords.push(coord.clone());
                let mut axis = dims.len();
                while axis > 0 {
                    axis -= 1;
                    coord[axis] += 1;
                    if coord[axis] < dims[axis] {
                        continue 'odometer;
                    }
                    coord[axis] = 0;
                }
                break;
            }
        }
        prop_assert_eq!(coords.len(), shape.len(), "visited every cell");
        for (flat, coord) in coords.iter().enumerate() {
            prop_assert_eq!(&shape.unflatten(flat), coord);
            let mut reference = OnlineStats::new();
            for rep in 0..grid.reps(coord) {
                grid.replicate(coord, rep, &mut reference);
            }
            prop_assert_eq!(rows[flat].count(), reference.count());
            if reference.count() > 0 {
                prop_assert!((rows[flat].mean() - reference.mean()).abs() <= 1e-12);
            }
            // Standalone run_reduce over the same cell: bit-identical
            // (the engine's advertised contract).
            let standalone = replicate::run_reduce(
                grid.reps(coord),
                grid.cell_seed(coord),
                |_, s, acc: &mut OnlineStats| acc.push(SimRng::new(s).f64()),
                OnlineStats::new,
                Accumulate::merge,
            );
            prop_assert_eq!(rows[flat].mean().to_bits(), standalone.mean().to_bits());
            prop_assert_eq!(
                rows[flat].variance().to_bits(),
                standalone.variance().to_bits()
            );
        }
    }

    // Scheduling any subset of cells reproduces the full run's rows
    // bit-for-bit — the resume contract.
    #[test]
    fn grid_subset_scheduling_is_bit_identical(
        dims in prop::collection::vec(1usize..4, 1..4),
        seed in any::<u64>(),
        mask in any::<u64>(),
    ) {
        let grid = SyntheticGrid { dims: dims.clone(), seed };
        let full = run_grid(&grid);
        let subset: Vec<usize> = (0..grid.shape().len())
            .filter(|f| mask >> (f % 64) & 1 == 1)
            .collect();
        let mut got = Vec::new();
        GridRunner::new().run_cells_with(&grid, &subset, |flat, row| got.push((flat, row)));
        prop_assert_eq!(got.len(), subset.len());
        let mut previous = None;
        for (flat, row) in &got {
            prop_assert!(previous.map(|p: usize| p < *flat).unwrap_or(true));
            previous = Some(*flat);
            prop_assert_eq!(row.count(), full[*flat].count());
            prop_assert_eq!(row.mean().to_bits(), full[*flat].mean().to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Shard partition soundness + merge bit-identity, for any shard
    // count and any per-shard worker count.
    #[test]
    fn shard_union_covers_disjointly_and_merges_bit_identical(
        dims in prop::collection::vec(1usize..4, 1..4),
        seed in any::<u64>(),
        n in 1usize..9,
        workers in 1usize..5,
    ) {
        let grid = SyntheticGrid { dims: dims.clone(), seed };
        let shape = grid.shape();
        let total = shape.len();
        // A name-like key (reversed coordinates) whose sort order
        // deliberately differs from flat order, as axis-name keys do.
        let key_of = |f: usize| {
            let coord = shape.unflatten(f);
            coord
                .iter()
                .rev()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join("/")
        };
        let full = run_grid(&grid);

        let mut owner: Vec<Option<usize>> = vec![None; total];
        let mut merged: Vec<Option<OnlineStats>> = (0..total).map(|_| None).collect();
        for index in 0..n {
            let members = shard_members(total, ShardSpec { index, count: n }, key_of);
            prop_assert!(
                members.windows(2).all(|w| w[0] < w[1]),
                "members ascending for the runner"
            );
            for &f in &members {
                prop_assert_eq!(owner[f], None, "cell {} owned by two shards", f);
                owner[f] = Some(index);
            }
            // Each shard may run on a host with a different worker
            // count; the merged result must not care.
            replicate::set_worker_limit(workers);
            GridRunner::new().run_cells_with(&grid, &members, |flat, row| {
                merged[flat] = Some(row);
            });
        }
        // Restore the ambient process-wide limit for the other tests.
        replicate::set_worker_limit(
            std::env::var("CSMAPROBE_WORKERS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        );

        prop_assert!(owner.iter().all(Option::is_some), "union covers the cell space");
        for (flat, row) in merged.into_iter().enumerate() {
            let row = row.expect("covered cell has a row");
            prop_assert_eq!(row.count(), full[flat].count());
            prop_assert_eq!(row.mean().to_bits(), full[flat].mean().to_bits());
            prop_assert_eq!(row.variance().to_bits(), full[flat].variance().to_bits());
        }
    }
}

/// A deterministic row line for sink tests.
fn sink_row(cell: usize) -> String {
    format!(
        "{{\"cell\":{cell},\"key\":\"cell-{cell}\",\"v\":{}}}",
        (cell as f64) * 1.5 - 2.0
    )
}

/// A unique scratch path per proptest case.
fn scratch_path() -> std::path::PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "csmaprobe-gridprop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // RowSink resume after truncation at ANY byte offset recovers the
    // longest complete prefix; re-appending the missing rows
    // reconstructs the original file byte-for-byte.
    #[test]
    fn rowsink_truncation_resume_recovers(
        rows in 1usize..12,
        cut in any::<u64>(),
    ) {
        let path = scratch_path();
        {
            let mut sink = RowSink::create(&path).unwrap();
            for c in 0..rows {
                sink.append(&sink_row(c)).unwrap();
            }
        }
        let original = std::fs::read(&path).unwrap();
        let offset = (cut % (original.len() as u64 + 1)) as usize;
        std::fs::write(&path, &original[..offset]).unwrap();

        // The survivor set must be exactly the complete-line prefix of
        // the truncated bytes.
        let surviving = original[..offset].iter().filter(|&&b| b == b'\n').count();
        let mut sink = RowSink::resume(&path).unwrap();
        prop_assert_eq!(sink.len(), surviving, "offset {}", offset);
        for c in 0..rows {
            prop_assert_eq!(sink.contains(&format!("cell-{c}")), c < surviving);
        }

        // Re-run "the missing cells" and compare byte-for-byte.
        for c in surviving..rows {
            sink.append(&sink_row(c)).unwrap();
        }
        let recovered = std::fs::read(&path).unwrap();
        prop_assert_eq!(&recovered, &original, "offset {}", offset);
        let read_back = sink.read_rows().unwrap();
        prop_assert_eq!(read_back.len(), rows);
        for (c, line) in read_back.iter().enumerate() {
            prop_assert_eq!(row_key(line), Some(format!("cell-{c}")).as_deref());
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Rows persisted under one engine policy must be rejected by a resume
/// under another: the policy (and each link's resolved tier) folds into
/// the run-config fingerprint every row carries, and the `grid` bin
/// refuses any row whose fingerprint differs from the resuming grid's.
/// Without this, a forced-event row set silently absorbed into an auto
/// (slotted-promoted) run would mix engine tiers in one table with no
/// trace in the data.
#[test]
fn resume_rejects_rows_from_a_different_engine_policy() {
    use csmaprobe::core::engine::{test_guard, EnginePolicy, EngineTier};
    use csmaprobe::core::grid::run_grid;
    use csmaprobe_bench::grid::{find_link, find_train, BiasGrid, GridRow};
    use csmaprobe_probe::tool::ToolKind;

    // wlan_low is a certified FIFO-free cell: auto promotes its trains
    // to the slotted kernel, forced-event pins the oracle — same data
    // (the kernel is trajectory-exact), different provenance.
    let make = || {
        BiasGrid::new(
            vec![find_link("wlan_low").unwrap()],
            vec![find_train("short").unwrap()],
            vec![ToolKind::Train],
            0.05,
            42,
        )
    };

    // Persist one cell under the forced-event policy.
    let path = scratch_path();
    let event_fingerprint = {
        let _g = test_guard(EnginePolicy::Forced(EngineTier::Event));
        let grid = make();
        let mut sink = RowSink::create(&path).unwrap();
        for row in run_grid(&grid) {
            sink.append(&row.to_json()).unwrap();
        }
        grid.fingerprint()
    };

    // Resume under auto: every persisted row must fail the bin's
    // fingerprint gate, even though key set and data bits both match.
    {
        let _g = test_guard(EnginePolicy::Auto);
        let grid = make();
        assert_ne!(grid.fingerprint(), event_fingerprint);
        let sink = RowSink::resume(&path).unwrap();
        let rows = sink.read_rows().unwrap();
        assert!(!rows.is_empty());
        for line in &rows {
            assert_eq!(GridRow::run_of(line), Some(event_fingerprint));
            assert_ne!(
                GridRow::run_of(line),
                Some(grid.fingerprint()),
                "row from a forced-event run must be refused on auto resume: {line}"
            );
        }
    }

    // Same policy, same grid: every row passes the gate (control).
    {
        let _g = test_guard(EnginePolicy::Forced(EngineTier::Event));
        let grid = make();
        let sink = RowSink::resume(&path).unwrap();
        for line in &sink.read_rows().unwrap() {
            assert_eq!(GridRow::run_of(line), Some(grid.fingerprint()));
        }
    }
    let _ = std::fs::remove_file(&path);
}
