//! Statistical-equivalence harness for the tiered DCF engine — the
//! headline contract of the engine stack.
//!
//! The slot-quantised kernel is *trajectory*-identical to the event
//! core per seed (pinned by `crates/mac` unit tests and
//! `tier_equivalence`'s bit-identity check). The property the router
//! actually relies on is stronger than any per-seed test can show:
//! the two engines must be draws from the **same distribution**. This
//! harness proves that the honest way — **disjoint seed sets** per
//! engine, two-sample Kolmogorov–Smirnov at α = 0.01 — across a regime
//! matrix spanning offered load × station count × train length:
//!
//! * access-delay distributions μ_i of probe trains (the paper's core
//!   observable), pooled over replications;
//! * steady-state delivered-throughput distributions across seeds.
//!
//! Run with `--nocapture` to print the per-regime tolerance table that
//! `EXPERIMENTS.md` ("Engine tiers" section) records:
//!
//! ```text
//! cargo test --release --test tier_equivalence -- --nocapture
//! ```

use csmaprobe::core::engine::{self, EnginePolicy, EngineTier};
use csmaprobe::core::link::{CrossShape, CrossSpec, LinkConfig, ProbeTarget, WlanLink};
use csmaprobe::desim::time::Dur;
use csmaprobe::stats::ks::two_sample_ks;
use csmaprobe::traffic::probe::ProbeTrain;
use csmaprobe_bench::tier::regime_matrix;

const ALPHA: f64 = 0.01;

/// Event-engine seeds and slotted-engine seeds never overlap: the KS
/// comparison must not be allowed to degenerate into the (already
/// separately pinned) per-seed bit-identity.
const EVENT_SEED_BASE: u64 = 0x0E_0000;
const SLOTTED_SEED_BASE: u64 = 0x51_0000;

fn header(columns: &str) {
    println!("regime                      {columns}");
}

#[test]
fn steady_throughput_distributions_equivalent_on_disjoint_seeds() {
    let duration = Dur::from_secs_f64(1.0);
    let reps = 16u64;
    header("n   D_ks    D_crit  mean_rel_diff");
    for r in regime_matrix() {
        // Total delivered rate (probe + contenders + FIFO): the Poisson
        // contenders make it a genuinely random variable in every
        // regime, which the probe's own rate is not at light CBR load.
        let sample = |tier: EngineTier, base: u64| -> Vec<f64> {
            (0..reps)
                .map(|i| {
                    let p = r
                        .steady_with_tier(tier, duration, base + i)
                        .expect("covered");
                    p.output_rate_bps + p.contending_bps.iter().sum::<f64>() + p.fifo_cross_bps
                })
                .collect()
        };
        let ev = sample(EngineTier::Event, EVENT_SEED_BASE);
        let sl = sample(EngineTier::Slotted, SLOTTED_SEED_BASE);
        // The repo's KS statistic pits a step ECDF against an
        // interpolated one (the paper's methodology for continuous
        // delay distributions); two identical point masses score
        // D = 1 under that convention, so a degenerate pair is
        // compared exactly instead.
        let degenerate = |v: &[f64]| v.iter().all(|&x| x == v[0]);
        let ks = if degenerate(&ev) && degenerate(&sl) && ev[0] == sl[0] {
            None
        } else {
            Some(two_sample_ks(&sl, &ev, ALPHA))
        };
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let rel = (mean(&sl) - mean(&ev)).abs() / mean(&ev).max(1.0);
        match &ks {
            Some(ks) => println!(
                "steady/{:<18} {:>3} {:.4}  {:.4}  {rel:.4}",
                r.name, reps, ks.statistic, ks.threshold
            ),
            None => println!(
                "steady/{:<18} {:>3} (identical atoms)  {rel:.4}",
                r.name, reps
            ),
        }
        if let Some(ks) = ks {
            assert!(
                !ks.reject,
                "{}: slotted vs event throughput KS {:.4} > {:.4}",
                r.name, ks.statistic, ks.threshold
            );
        }
        assert!(
            rel < 0.05,
            "{}: mean throughputs drifted ({rel:.4})",
            r.name
        );
    }
}

/// Train links for the access-delay legs: the Fig 1 shape (one Poisson
/// contender) and a heterogeneous CBR + Poisson mix.
fn train_links() -> Vec<(&'static str, WlanLink)> {
    vec![
        (
            "poisson-1",
            WlanLink::new(LinkConfig::default().contending_bps(2_000_000.0)),
        ),
        (
            "mixed-2",
            WlanLink::new(
                LinkConfig::default()
                    .contending_bps(2_000_000.0)
                    .contending(CrossSpec::shaped(1_000_000.0, CrossShape::Cbr)),
            ),
        ),
    ]
}

/// Pool the access delays of `reps` trains sent under `policy`.
fn pooled_access_delays(
    link: &WlanLink,
    train: ProbeTrain,
    policy: EnginePolicy,
    seed_base: u64,
    reps: u64,
) -> Vec<f64> {
    let _g = engine::test_guard(policy);
    let mut pool = Vec::new();
    for i in 0..reps {
        let obs = link.probe_train(train, seed_base + i);
        pool.extend(obs.access_delays.expect("WLAN links report access delays"));
    }
    pool
}

#[test]
fn access_delay_distributions_equivalent_on_disjoint_seeds() {
    header("n     D_ks    D_crit");
    for (name, link) in train_links() {
        for &len in &[20usize, 100] {
            let train = ProbeTrain::from_rate(len, 1500, 5_000_000.0);
            let reps = (800 / len) as u64; // comparable pool sizes per leg
            let ev = pooled_access_delays(
                &link,
                train,
                EnginePolicy::Forced(EngineTier::Event),
                EVENT_SEED_BASE,
                reps,
            );
            let sl = pooled_access_delays(
                &link,
                train,
                EnginePolicy::Forced(EngineTier::Slotted),
                SLOTTED_SEED_BASE,
                reps,
            );
            let ks = two_sample_ks(&sl, &ev, ALPHA);
            println!(
                "train/{name}/n={len:<6} {:>5} {:.4}  {:.4}",
                ev.len(),
                ks.statistic,
                ks.threshold
            );
            assert!(
                !ks.reject,
                "{name}/n={len}: access-delay KS {:.4} > {:.4}",
                ks.statistic, ks.threshold
            );
        }
    }
}

/// Measured tolerance rows for the finite-load analytic tier — the
/// non-saturated fixed point vs a seed-averaged event mean on the
/// `nonsat-*` cells the router certifies (sub-knee / knee / above-knee
/// × station count). The KS legs above already include these cells on
/// the slotted/event axis; the analytic tier is deterministic, so its
/// row in the equivalence table is a tolerance band, not a KS score.
#[test]
fn finite_load_fixed_point_tolerance_rows() {
    let duration = Dur::from_secs_f64(2.0);
    let reps = 8u64;
    header("n   analytic_mbps  event_mbps  rel_err");
    for r in regime_matrix() {
        let cfg = r.link.config();
        if !engine::nonsat_certified(cfg, r.ri_bps) || engine::saturation_covers(cfg, r.ri_bps) {
            continue;
        }
        let analytic = r
            .steady_with_tier(EngineTier::Analytic, duration, 0)
            .expect("certified cell is analytic-covered");
        let total = |p: &csmaprobe::core::link::SteadyPoint| {
            p.output_rate_bps + p.contending_bps.iter().sum::<f64>() + p.fifo_cross_bps
        };
        let event_mean = (0..reps)
            .map(|i| {
                total(
                    &r.steady_with_tier(EngineTier::Event, duration, EVENT_SEED_BASE + i)
                        .expect("covered"),
                )
            })
            .sum::<f64>()
            / reps as f64;
        let rel = (total(&analytic) - event_mean).abs() / event_mean;
        println!(
            "nonsat/{:<17} {:>3} {:>13.4} {:>11.4}  {rel:.4}",
            r.name,
            reps,
            total(&analytic) / 1e6,
            event_mean / 1e6
        );
        assert!(
            rel < 0.05,
            "{}: fixed point drifted from the event mean ({rel:.4})",
            r.name
        );
    }
}

/// Negative routing: cells the solver does not certify must stay on
/// simulation — `analytic_covers` refuses them, the auto router never
/// hands them to the fixed point, and the auto steady point stays
/// bit-identical to the forced run of the tier it actually picks.
#[test]
fn uncertified_cells_stay_on_simulation() {
    let duration = Dur::from_secs_f64(0.5);
    let uncovered: Vec<(&str, WlanLink, f64)> = vec![
        (
            "cbr-contender",
            WlanLink::new(
                LinkConfig::default().contending(CrossSpec::shaped(1_000_000.0, CrossShape::Cbr)),
            ),
            2_000_000.0,
        ),
        (
            "fifo-cross",
            WlanLink::new(
                LinkConfig::default()
                    .contending_bps(2_000_000.0)
                    .fifo_cross_bps(1_000_000.0),
            ),
            2_000_000.0,
        ),
        (
            "asymmetric-bytes",
            WlanLink::new(
                LinkConfig::default().contending(CrossSpec::poisson_sized(2_000_000.0, 400)),
            ),
            2_000_000.0,
        ),
        (
            "eleven-stations",
            WlanLink::new({
                let mut cfg = LinkConfig::default();
                for _ in 0..10 {
                    cfg = cfg.contending_bps(400_000.0);
                }
                cfg
            }),
            1_000_000.0,
        ),
    ];
    for (name, link, ri) in &uncovered {
        assert!(
            !engine::analytic_covers(link.config(), *ri),
            "{name}: must not be analytic-covered"
        );
        let auto_tier = {
            let _g = engine::test_guard(EnginePolicy::Auto);
            engine::steady_tier(link.config(), *ri)
        };
        assert_ne!(
            auto_tier,
            EngineTier::Analytic,
            "{name}: auto router leaked an uncertified cell to the fixed point"
        );
        // The tier auto picks is simulation, and the auto point is
        // bit-identical to forcing that same tier explicitly.
        let auto_pt = {
            let _g = engine::test_guard(EnginePolicy::Auto);
            link.steady_state(*ri, duration, 0xBAD5EED)
        };
        let forced_pt = match auto_tier {
            EngineTier::Event => link.steady_state_event(*ri, duration, 0xBAD5EED),
            EngineTier::Slotted => link.steady_state_slotted(*ri, duration, 0xBAD5EED),
            EngineTier::Analytic => unreachable!(),
        };
        assert_eq!(
            auto_pt.output_rate_bps.to_bits(),
            forced_pt.output_rate_bps.to_bits(),
            "{name}"
        );
        assert_eq!(auto_pt.contending_bps, forced_pt.contending_bps, "{name}");
        assert_eq!(
            auto_pt.fifo_cross_bps.to_bits(),
            forced_pt.fifo_cross_bps.to_bits(),
            "{name}"
        );
    }
}

#[test]
fn forced_slotted_trains_are_trajectory_exact() {
    // Same seed across tiers must stay bit-identical — the sharper
    // per-seed contract the KS legs deliberately do not rely on.
    for (name, link) in train_links() {
        let train = ProbeTrain::from_rate(50, 1500, 5_000_000.0);
        let ev = {
            let _g = engine::test_guard(EnginePolicy::Forced(EngineTier::Event));
            link.probe_train(train, 0xE1)
        };
        let sl = {
            let _g = engine::test_guard(EnginePolicy::Forced(EngineTier::Slotted));
            link.probe_train(train, 0xE1)
        };
        assert_eq!(ev.arrivals, sl.arrivals, "{name}");
        assert_eq!(ev.rx_times, sl.rx_times, "{name}");
        assert_eq!(ev.access_delays, sl.access_delays, "{name}");
    }
}
